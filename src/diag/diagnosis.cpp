#include "diag/diagnosis.hpp"

#include <algorithm>
#include <bit>

#include "sim/fault_sim.hpp"
#include "sim/sequential_sim.hpp"

namespace uniscan {

namespace {

/// Per-batch fail-log extraction: simulate 63 faults in parallel and emit
/// every (time, po, value) mismatch per slot. Reuses the same machine
/// organisation as FaultSimulator but records all mismatches instead of the
/// first detection.
void batch_fail_logs(const Netlist& nl, const TestSequence& seq,
                     std::span<const Fault> faults, std::vector<FailLog>& out) {
  struct Forcing {
    std::uint64_t set0 = 0, set1 = 0;
    W3 apply(W3 w) const noexcept {
      const std::uint64_t touched = set0 | set1;
      return W3{(w.v0 & ~touched) | set0, (w.v1 & ~touched) | set1};
    }
  };
  std::vector<Forcing> stem(nl.num_gates());
  struct BranchForce {
    GateId gate;
    std::int16_t pin;
    Forcing force;
  };
  std::vector<BranchForce> branches;
  std::vector<std::uint8_t> has_branch(nl.num_gates(), 0);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    const std::uint64_t bit = 1ULL << (i + 1);
    if (f.pin == kStemPin) {
      (f.stuck_one ? stem[f.gate].set1 : stem[f.gate].set0) |= bit;
    } else {
      BranchForce* bf = nullptr;
      for (auto& b : branches)
        if (b.gate == f.gate && b.pin == f.pin) bf = &b;
      if (!bf) {
        branches.push_back(BranchForce{f.gate, f.pin, {}});
        bf = &branches.back();
        has_branch[f.gate] = 1;
      }
      (f.stuck_one ? bf->force.set1 : bf->force.set0) |= bit;
    }
  }
  const auto branch_force = [&](GateId g, std::size_t pin, W3 w) -> W3 {
    for (const auto& b : branches)
      if (b.gate == g && b.pin == static_cast<std::int16_t>(pin)) return b.force.apply(w);
    return w;
  };

  std::vector<W3> values(nl.num_gates(), W3::all_x());
  std::vector<W3> state(nl.num_dffs(), W3::all_x());
  W3 fanin_buf[64];

  for (std::size_t t = 0; t < seq.length(); ++t) {
    const auto& vec = seq.vector_at(t);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      const GateId pi = nl.inputs()[i];
      values[pi] = stem[pi].apply(W3::broadcast(vec[i]));
    }
    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      values[ff] = stem[ff].apply(state[j]);
    }
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      const std::size_t n = gate.fanins.size();
      if (has_branch[g]) {
        for (std::size_t p = 0; p < n; ++p)
          fanin_buf[p] = branch_force(g, p, values[gate.fanins[p]]);
      } else {
        for (std::size_t p = 0; p < n; ++p) fanin_buf[p] = values[gate.fanins[p]];
      }
      values[g] = stem[g].apply(eval_gate_w3(gate.type, fanin_buf, n));
    }

    for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
      const W3 w = values[nl.outputs()[o]];
      const bool good0 = (w.v0 & 1) != 0;
      const bool good1 = (w.v1 & 1) != 0;
      std::uint64_t diff = 0;
      V3 faulty_value = V3::X;
      if (good1) {
        diff = w.v0 & ~1ULL;
        faulty_value = V3::Zero;
      } else if (good0) {
        diff = w.v1 & ~1ULL;
        faulty_value = V3::One;
      }
      while (diff) {
        const unsigned slot = static_cast<unsigned>(std::countr_zero(diff));
        diff &= diff - 1;
        out[slot - 1].push_back(FailEntry{static_cast<std::uint32_t>(t),
                                          static_cast<std::uint32_t>(o), faulty_value});
      }
    }

    for (std::size_t j = 0; j < nl.num_dffs(); ++j) {
      const GateId ff = nl.dffs()[j];
      W3 d = values[nl.gate(ff).fanins[0]];
      if (has_branch[ff]) d = branch_force(ff, 0, d);
      state[j] = d;
    }
  }
}

}  // namespace

FailLog simulate_fail_log(const Netlist& nl, const TestSequence& seq, const Fault& fault) {
  std::vector<FailLog> logs(1);
  const Fault faults[1] = {fault};
  batch_fail_logs(nl, seq, faults, logs);
  return std::move(logs[0]);
}

std::vector<std::size_t> diagnose(const Netlist& nl, const TestSequence& seq,
                                  std::span<const Fault> faults, const FailLog& observed) {
  std::vector<std::size_t> candidates;
  for (std::size_t base = 0; base < faults.size(); base += 63) {
    const std::size_t count = std::min<std::size_t>(63, faults.size() - base);
    std::vector<FailLog> logs(count);
    batch_fail_logs(nl, seq, faults.subspan(base, count), logs);
    for (std::size_t i = 0; i < count; ++i)
      if (logs[i] == observed) candidates.push_back(base + i);
  }
  return candidates;
}

}  // namespace uniscan
