// Cause-effect fault diagnosis on unified test sequences.
//
// When a device fails the test, the tester records WHICH cycles and outputs
// mismatched and what value was seen — the fail log. Diagnosis simulates the
// fault universe against the same sequence and reports the candidates whose
// predicted fail log matches the observation exactly. Because the unified
// sequence observes outputs every cycle (scan shifts included), fail logs
// carry far more resolution than end-of-test scan dumps, which sharpens the
// diagnosis — another payoff of the paper's "no special scan operations"
// view.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

/// One observed mismatch: output `po` (Netlist::outputs() index) showed
/// `value` at cycle `time` where the good machine expected the opposite.
struct FailEntry {
  std::uint32_t time = 0;
  std::uint32_t po = 0;
  V3 value = V3::X;

  bool operator==(const FailEntry&) const = default;
  auto operator<=>(const FailEntry&) const = default;
};

using FailLog = std::vector<FailEntry>;

/// Predicted fail log of `fault` under `seq` (entries sorted by time, po).
/// Only positions where both machines have known values are recorded.
FailLog simulate_fail_log(const Netlist& nl, const TestSequence& seq, const Fault& fault);

/// Indices (into `faults`) of candidates whose predicted fail log equals
/// `observed` exactly. An empty observed log matches faults the sequence
/// does not expose at all — pass the log of a failing run.
std::vector<std::size_t> diagnose(const Netlist& nl, const TestSequence& seq,
                                  std::span<const Fault> faults, const FailLog& observed);

}  // namespace uniscan
