#include "sat/sat_engine.hpp"

#include <utility>

#include "atpg/frame_model.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sat/encode.hpp"

namespace uniscan::sat {
namespace {

/// Replay a model through the FrameModel pair simulator and finish exactly
/// like PODEM's ScanObserve: prefer the PO observation when it is no later
/// than the latched one, else take the latch. Returns false (degrading the
/// call to Aborted) if the model does not actually expose the fault — which
/// by the encoding's construction would be an encoder bug, never a caller
/// problem.
bool confirm_and_fill(FrameModel& fm, const MiterEncoding& enc, const Solver& solver,
                      bool state_assignable, SatResult& out) {
  for (std::size_t f = 0; f < enc.frames; ++f)
    for (std::size_t i = 0; i < enc.num_inputs; ++i)
      fm.assign(f, i,
                solver.model_value(enc.pi_var[f * enc.num_inputs + i]) ? V3::One : V3::Zero);
  if (state_assignable)
    for (std::size_t j = 0; j < enc.num_dffs; ++j)
      fm.assign_state(j, solver.model_value(enc.state_var[j]) ? V3::One : V3::Zero);
  fm.simulate();

  const auto po = fm.po_detection_frame();
  const auto latch = fm.first_latched_effect();
  if (po && (!latch || *po <= latch->frame)) {
    out.observed_at_po = true;
    out.frames_used = *po + 1;
  } else if (latch) {
    out.observed_at_po = false;
    out.latched_dff = latch->dff_index;
    out.frames_used = latch->frame + 1;
  } else {
    return false;
  }
  if (state_assignable) out.scan_in = fm.extract_state_assignment();
  out.subsequence = fm.extract_sequence(out.frames_used);
  return true;
}

template <class FaultT>
SatResult prove_impl(const CompiledNetlist& cnl, const FaultT& fault,
                     const SatEngineOptions& options) {
  obs::TraceSpan span("sat_prove");
  SatResult out;

  // PR 4 invariant up front: a call that is already cancelled proves
  // nothing, even when the miter would be structurally UNSAT.
  if (options.cancel.poll()) return out;

  EncodeOptions eopt;
  eopt.frames = options.frames;
  eopt.state_assignable = options.state_assignable;
  eopt.tf_prev_init = options.tf_prev_init;
  eopt.tf_prev_assignable = options.tf_prev_assignable;
  MiterEncoding enc = encode_fault_miter(cnl, fault, eopt);

  if (enc.cnf.has_empty_clause) {
    // No observation point is reachable from the fault at this depth: the
    // miter is UNSAT by construction, certificate = the empty clause itself.
    out.verdict = SatVerdict::RedundantProved;
    if (options.want_certificate)
      out.certificate = UnsatCertificate{enc.cnf.num_vars, enc.cnf.clauses, {Clause{}}};
    return out;
  }

  Solver solver;
  solver.ensure_vars(enc.cnf.num_vars);
  for (const Clause& c : enc.cnf.clauses)
    if (!solver.add_clause(c)) break;  // UNSAT at top level; solve() reports it

  SolverOptions sopt;
  sopt.max_conflicts = options.max_conflicts;
  sopt.cancel = options.cancel;
  sopt.record_proof = options.want_certificate;
  const SolveStatus status = solver.solve(sopt);

  out.stats = solver.stats();
  obs::count(obs::Counter::SatConflicts, out.stats.conflicts);
  obs::count(obs::Counter::SatDecisions, out.stats.decisions);
  obs::count(obs::Counter::SatPropagations, out.stats.propagations);

  switch (status) {
    case SolveStatus::Aborted: return out;
    case SolveStatus::Unsat:
      out.verdict = SatVerdict::RedundantProved;
      if (options.want_certificate)
        out.certificate = UnsatCertificate{enc.cnf.num_vars, enc.cnf.clauses, solver.proof()};
      return out;
    case SolveStatus::Sat: break;
  }

  FrameModel fm(cnl, fault, options.frames);
  fm.set_state_assignable(options.state_assignable);
  if (fm.is_transition()) {
    out.launch_prev = enc.tf_prev_var
                          ? (solver.model_value(*enc.tf_prev_var) ? V3::One : V3::Zero)
                          : options.tf_prev_init;
    fm.set_initial_prev_driven(out.launch_prev);
  }
  if (confirm_and_fill(fm, enc, solver, options.state_assignable, out))
    out.verdict = SatVerdict::Testable;
  return out;
}

}  // namespace

SatResult SatEngine::prove(const Fault& fault, const SatEngineOptions& options) const {
  return prove_impl(*cnl_, fault, options);
}

SatResult SatEngine::prove(const TransitionFault& fault, const SatEngineOptions& options) const {
  return prove_impl(*cnl_, fault, options);
}

}  // namespace uniscan::sat
