// In-repo CDCL SAT solver (MiniSat-style, no external dependencies).
//
// The standard modern-CDCL loop: unit propagation over two-watched-literal
// lists with blocker literals, first-UIP conflict analysis with local
// clause minimization, VSIDS branching with phase saving, Luby restarts,
// and activity-driven learnt-clause database reduction. Everything is
// deterministic — no randomization, no timers — so a solve is a pure
// function of (clauses, options) and verdicts are bit-identical across
// thread counts and runs, like every other engine in the repo.
//
// Budgets follow the PR 4 cancellation contract: a solve cut short by the
// conflict budget or the CancelToken returns Aborted, never Unsat — an
// aborted search proves nothing. With record_proof, an Unsat result carries
// an addition-only RUP trace (sat/certificate.hpp): every learned clause in
// chronological order, ending with the empty clause.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/cnf.hpp"
#include "util/cancel.hpp"

namespace uniscan::sat {

enum class SolveStatus : std::uint8_t {
  Sat,      // a model exists (read it via model_value)
  Unsat,    // proved: no model (proof() holds the RUP trace when recorded)
  Aborted,  // conflict budget or CancelToken fired before an answer
};

struct SolverOptions {
  /// Conflict budget; < 0 means unlimited. Exhausting it yields Aborted.
  std::int64_t max_conflicts = -1;
  /// Cooperative deadline (DESIGN.md §5f), polled at stride on conflicts.
  CancelToken cancel;
  /// Record the addition-only RUP proof trace for Unsat results.
  bool record_proof = false;
};

struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;  // literals propagated
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;       // learnt clauses added
  std::uint64_t removed = 0;       // learnt clauses dropped by DB reduction
};

class Solver {
 public:
  Solver() = default;

  Var new_var();
  /// Grow the variable set so every Var < n exists (encoder handoff).
  void ensure_vars(Var n);
  std::size_t num_vars() const noexcept { return assign_.size(); }

  /// Add a problem clause (top level only, before/between solves). Returns
  /// false once the formula is UNSAT at the top level.
  bool add_clause(Clause c);

  /// Solve the current formula. May be called again after Aborted with a
  /// larger budget; learnt clauses are kept.
  SolveStatus solve(const SolverOptions& options = {});

  /// Model polarity of `v`; valid after a Sat result.
  bool model_value(Var v) const { return model_[v] == 0; }

  const SolverStats& stats() const noexcept { return stats_; }

  /// Learned-clause additions in chronological order; after an Unsat solve
  /// with record_proof the last entry is the empty clause.
  const std::vector<Clause>& proof() const noexcept { return proof_; }

 private:
  struct Watcher {
    std::uint32_t cref;
    Lit blocker;
  };
  struct InternalClause {
    std::vector<Lit> lits;
    double act = 0;
    bool learnt = false;
    bool deleted = false;
  };

  static constexpr std::uint32_t kNoClause = 0xffffffffu;
  static constexpr std::uint8_t kTrue = 0, kFalse = 1, kUndef = 2;

  std::uint8_t value(Lit l) const noexcept {
    const std::uint8_t a = assign_[l.var()];
    return a == kUndef ? kUndef : static_cast<std::uint8_t>(a ^ (l.sign() ? 1 : 0));
  }
  std::uint32_t decision_level() const noexcept {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }

  void attach(std::uint32_t cref);
  void detach(std::uint32_t cref);
  void unchecked_enqueue(Lit p, std::uint32_t reason);
  std::uint32_t propagate();
  void analyze(std::uint32_t confl, Clause& out_learnt, std::uint32_t& out_btlevel);
  bool lit_redundant_local(Lit p, const Clause& learnt) const;
  void cancel_until(std::uint32_t level);
  void reduce_db();
  void record_step(Clause c);

  // VSIDS order heap (max-heap on activity_).
  bool heap_contains(Var v) const noexcept { return heap_pos_[v] != 0xffffffffu; }
  void heap_insert(Var v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  Var heap_pop();
  void bump_var(Var v);
  void bump_clause(InternalClause& c);

  std::vector<InternalClause> clauses_;
  std::vector<std::uint32_t> learnt_refs_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  std::vector<std::uint8_t> assign_;           // per var: kTrue/kFalse/kUndef
  std::vector<std::uint8_t> model_;            // last Sat assignment
  std::vector<std::uint8_t> phase_;            // saved polarity (0 = true)
  std::vector<double> activity_;
  std::vector<std::uint32_t> reason_;
  std::vector<std::uint32_t> level_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> heap_pos_;
  std::vector<std::uint8_t> seen_;
  std::vector<Var> removed_;  // scratch for analyze() minimization cleanup
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  bool ok_ = true;
  bool record_proof_ = false;
  SolverStats stats_;
  std::vector<Clause> proof_;
};

}  // namespace uniscan::sat
