#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>

namespace uniscan::sat {

namespace {

constexpr double kVarDecay = 1.0 / 0.95;
constexpr double kClaDecay = 1.0 / 0.999;
constexpr std::uint64_t kRestartBase = 100;

/// Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence containing index i and its position in it.
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  model_.push_back(1);
  phase_.push_back(1);  // default polarity false, like MiniSat
  activity_.push_back(0.0);
  reason_.push_back(kNoClause);
  level_.push_back(0);
  seen_.push_back(0);
  heap_pos_.push_back(0xffffffffu);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

void Solver::ensure_vars(Var n) {
  while (assign_.size() < n) new_var();
}

bool Solver::add_clause(Clause c) {
  assert(decision_level() == 0);
  if (!ok_) return false;

  // Normalize: sort, drop duplicates and level-0-false literals, detect
  // tautologies and satisfied clauses.
  std::sort(c.begin(), c.end());
  Clause out;
  Lit prev = kLitUndef;
  for (const Lit l : c) {
    assert(l.var() < assign_.size());
    if (value(l) == kTrue || (prev != kLitUndef && l == ~prev)) return true;  // satisfied/tautology
    if (value(l) == kFalse || l == prev) continue;
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    // The clause is falsified at top level: the formula is UNSAT, and the
    // empty clause follows from the originals by unit propagation alone.
    ok_ = false;
    record_step({});
    return false;
  }
  if (out.size() == 1) {
    unchecked_enqueue(out[0], kNoClause);
    if (propagate() != kNoClause) {
      ok_ = false;
      record_step({});
      return false;
    }
    return true;
  }
  const std::uint32_t cref = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back({std::move(out), 0.0, /*learnt=*/false, /*deleted=*/false});
  attach(cref);
  return true;
}

void Solver::attach(std::uint32_t cref) {
  const InternalClause& c = clauses_[cref];
  watches_[(~c.lits[0]).index()].push_back({cref, c.lits[1]});
  watches_[(~c.lits[1]).index()].push_back({cref, c.lits[0]});
}

void Solver::detach(std::uint32_t cref) {
  const InternalClause& c = clauses_[cref];
  for (const Lit w : {c.lits[0], c.lits[1]}) {
    auto& ws = watches_[(~w).index()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cref) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::unchecked_enqueue(Lit p, std::uint32_t reason) {
  assert(value(p) == kUndef);
  assign_[p.var()] = p.sign() ? kFalse : kTrue;
  reason_[p.var()] = reason;
  level_[p.var()] = decision_level();
  trail_.push_back(p);
}

std::uint32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      InternalClause& c = clauses_[w.cref];
      ++i;
      const Lit not_p = ~p;
      if (c.lits[0] == not_p) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == not_p);
      const Lit first = c.lits[0];
      const Watcher ww{w.cref, first};
      if (first != w.blocker && value(first) == kTrue) {
        ws[j++] = ww;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).index()].push_back(ww);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      ws[j++] = ww;
      if (value(first) == kFalse) {
        // Conflict: keep the remaining watchers and report.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return w.cref;
      }
      unchecked_enqueue(first, w.cref);
    }
    ws.resize(j);
  }
  return kNoClause;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_sift_up(heap_pos_[v]);
}

void Solver::bump_clause(InternalClause& c) {
  c.act += cla_inc_;
  if (c.act > 1e20) {
    for (const std::uint32_t r : learnt_refs_)
      if (!clauses_[r].deleted) clauses_[r].act *= 1e-20;
    cla_inc_ *= 1e-20;
  }
}

/// Local (non-recursive) minimization: a literal is redundant if its reason
/// clause exists and every other literal of the reason is already marked
/// seen (i.e. is in the learnt clause or on the trail at level 0).
bool Solver::lit_redundant_local(Lit p, const Clause&) const {
  const std::uint32_t r = reason_[p.var()];
  if (r == kNoClause) return false;
  const InternalClause& c = clauses_[r];
  for (const Lit q : c.lits) {
    if (q.var() == p.var()) continue;
    if (!seen_[q.var()] && level_[q.var()] > 0) return false;
  }
  return true;
}

void Solver::analyze(std::uint32_t confl, Clause& out_learnt, std::uint32_t& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(kLitUndef);  // slot for the asserting literal
  std::size_t index = trail_.size();
  Lit p = kLitUndef;
  int path_c = 0;

  do {
    assert(confl != kNoClause);
    InternalClause& c = clauses_[confl];
    if (c.learnt) bump_clause(c);
    for (std::size_t k = (p == kLitUndef ? 0 : 1); k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      seen_[q.var()] = 1;
      bump_var(q.var());
      if (level_[q.var()] >= decision_level())
        ++path_c;
      else
        out_learnt.push_back(q);
    }
    // Next antecedent on the trail.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_c;
  } while (path_c > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization (local strengthening only). Removed
  // literals keep their seen_ marks during the scan — lit_redundant_local
  // relies on them — so their vars are collected and cleared after.
  std::size_t kept = 1;
  removed_.clear();
  for (std::size_t k = 1; k < out_learnt.size(); ++k) {
    if (!lit_redundant_local(~out_learnt[k], out_learnt))
      out_learnt[kept++] = out_learnt[k];
    else
      removed_.push_back(out_learnt[k].var());
  }
  out_learnt.resize(kept);
  for (const Var v : removed_) seen_[v] = 0;

  // Backjump level: highest level among the non-asserting literals.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k)
      if (level_[out_learnt[k].var()] > level_[out_learnt[max_i].var()]) max_i = k;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }
  for (std::size_t k = 0; k < out_learnt.size(); ++k) seen_[out_learnt[k].var()] = 0;
}

void Solver::cancel_until(std::uint32_t target) {
  if (decision_level() <= target) return;
  for (std::size_t k = trail_.size(); k > trail_lim_[target];) {
    const Var v = trail_[--k].var();
    phase_[v] = assign_[v];  // phase saving
    assign_[v] = kUndef;
    reason_[v] = kNoClause;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
}

void Solver::reduce_db() {
  // Drop the less active half of the learnt clauses; keep binary clauses
  // and clauses locked as a reason for a current assignment.
  std::vector<std::uint32_t> cand;
  for (const std::uint32_t r : learnt_refs_) {
    const InternalClause& c = clauses_[r];
    if (c.deleted || c.lits.size() <= 2) continue;
    if (value(c.lits[0]) == kTrue && reason_[c.lits[0].var()] == r) continue;  // locked
    cand.push_back(r);
  }
  std::sort(cand.begin(), cand.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (clauses_[a].act != clauses_[b].act) return clauses_[a].act < clauses_[b].act;
    return a < b;  // deterministic tie-break
  });
  const std::size_t drop = cand.size() / 2;
  for (std::size_t k = 0; k < drop; ++k) {
    detach(cand[k]);
    clauses_[cand[k]].deleted = true;
    clauses_[cand[k]].lits.clear();
    clauses_[cand[k]].lits.shrink_to_fit();
    ++stats_.removed;
  }
}

void Solver::record_step(Clause c) {
  if (record_proof_) proof_.push_back(std::move(c));
}

SolveStatus Solver::solve(const SolverOptions& options) {
  record_proof_ = options.record_proof;
  if (!ok_) {
    // The conflict happened during add_clause, possibly before proof
    // recording was requested; the empty clause follows from the originals
    // by unit propagation alone, so it is the whole trace.
    if (record_proof_ && proof_.empty()) record_step({});
    return SolveStatus::Unsat;
  }

  cancel_until(0);
  qhead_ = 0;  // re-propagate the top level (cheap; makes re-solve sound)
  if (propagate() != kNoClause) {
    ok_ = false;
    record_step({});
    return SolveStatus::Unsat;
  }

  StridedPoll cancel(options.cancel);
  const std::int64_t conflict_budget =
      options.max_conflicts < 0
          ? -1
          : static_cast<std::int64_t>(stats_.conflicts) + options.max_conflicts;
  std::size_t max_learnts = std::max<std::size_t>(clauses_.size() / 3, 512);
  std::uint64_t restart_seq = 0;
  std::uint64_t restart_limit = kRestartBase * luby(restart_seq);
  std::uint64_t conflicts_since_restart = 0;
  Clause learnt;

  for (;;) {
    const std::uint32_t confl = propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;
        record_step({});
        return SolveStatus::Unsat;
      }

      std::uint32_t bt_level = 0;
      analyze(confl, learnt, bt_level);
      record_step(learnt);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], kNoClause);
      } else {
        const std::uint32_t cref = static_cast<std::uint32_t>(clauses_.size());
        clauses_.push_back({learnt, cla_inc_, /*learnt=*/true, /*deleted=*/false});
        learnt_refs_.push_back(cref);
        attach(cref);
        unchecked_enqueue(learnt[0], cref);
      }
      ++stats_.learned;
      var_inc_ *= kVarDecay;
      cla_inc_ *= kClaDecay;

      if (conflict_budget >= 0 &&
          static_cast<std::int64_t>(stats_.conflicts) >= conflict_budget) {
        cancel_until(0);
        return SolveStatus::Aborted;
      }
      if (cancel.poll()) {
        cancel_until(0);
        return SolveStatus::Aborted;
      }
      if (conflicts_since_restart >= restart_limit) {
        ++stats_.restarts;
        ++restart_seq;
        restart_limit = kRestartBase * luby(restart_seq);
        conflicts_since_restart = 0;
        cancel_until(0);
      }
      if (stats_.learned > stats_.removed &&
          stats_.learned - stats_.removed >= max_learnts) {
        reduce_db();
        max_learnts += max_learnts / 2;
      }
      continue;
    }

    // No conflict: pick the next branch variable.
    Var next = 0xffffffffu;
    while (!heap_.empty()) {
      const Var v = heap_pop();
      if (assign_[v] == kUndef) {
        next = v;
        break;
      }
    }
    if (next == 0xffffffffu) {
      // Every variable assigned: model found.
      model_ = assign_;
      cancel_until(0);
      return SolveStatus::Sat;
    }
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    unchecked_enqueue(lit(next, phase_[next] == kFalse), kNoClause);
  }
}

// ---- order heap -----------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

Var Solver::heap_pop() {
  const Var v = heap_[0];
  heap_pos_[v] = 0xffffffffu;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return v;
}

}  // namespace uniscan::sat
