// SAT-backed redundancy prover / test generator (DESIGN.md §5l).
//
// One call proves one fault: encode the time-frame-expanded miter
// (sat/encode.hpp), solve it with the in-repo CDCL solver (sat/solver.hpp),
// and turn the answer into a verdict the ATPG loops can trust:
//
//  * Sat    — the model is decoded into (scan-in, PI vectors) and CONFIRMED
//             by replaying it through the FrameModel pair simulator before
//             Testable is reported; a model that fails to replay (an encoder
//             bug, by construction) degrades to Aborted, never to a wrong
//             verdict. Callers replay the returned test through the fault
//             simulator again before counting a detection.
//  * Unsat  — RedundantProved, with an optional RUP certificate. For
//             stuck-at faults at frames=1 with an assignable state this is
//             full conventional-scan untestability; for transition faults it
//             is a depth-bounded claim (no test within the unrolled window —
//             the launch history entering frame 0 is X, not universally
//             quantified).
//  * Aborted — budget or cancellation; proves nothing (PR 4: a cancelled
//             call never reports Redundant, checked again at entry).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "fault/transition_fault.hpp"
#include "sat/certificate.hpp"
#include "sat/solver.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/sequence.hpp"
#include "util/cancel.hpp"

namespace uniscan::sat {

enum class SatVerdict : std::uint8_t {
  Testable,         // confirmed test in scan_in/subsequence
  RedundantProved,  // miter UNSAT up to the unrolled depth
  Aborted,          // budget or cancellation; no claim
};

struct SatEngineOptions {
  std::size_t frames = 1;        // unrolled depth
  bool state_assignable = true;  // (SI, T) model vs all-X power-up
  V3 tf_prev_init = V3::X;       // transition launch history entering frame 0
  /// Transition faults only: existentially quantify the frame-0 launch
  /// history instead of pinning it to tf_prev_init. Required for a SOUND
  /// transition redundancy claim — UNSAT under an X history does not rule
  /// out a test under a concrete one (see sat/encode.hpp).
  bool tf_prev_assignable = false;
  std::int64_t max_conflicts = 20000;  // < 0: unlimited
  CancelToken cancel;
  bool want_certificate = false;
};

struct SatResult {
  SatVerdict verdict = SatVerdict::Aborted;
  /// Testable artifacts, mirroring PODEM's ScanObserve finish: the scan-in
  /// state (when assignable), the PI vectors of the frames actually needed,
  /// and where the effect was observed (a PO, else the latched DFF).
  std::vector<V3> scan_in;
  TestSequence subsequence;
  std::size_t frames_used = 0;
  bool observed_at_po = false;
  std::optional<std::size_t> latched_dff;
  /// Launch history the confirmed test assumed (transition faults; the
  /// solver's choice when tf_prev_assignable, else tf_prev_init).
  V3 launch_prev = V3::X;

  SolverStats stats;
  std::optional<UnsatCertificate> certificate;  // when requested, on UNSAT
};

class SatEngine {
 public:
  explicit SatEngine(const CompiledNetlist& cnl) : cnl_(&cnl) {}

  SatResult prove(const Fault& fault, const SatEngineOptions& options) const;
  SatResult prove(const TransitionFault& fault, const SatEngineOptions& options) const;

 private:
  const CompiledNetlist* cnl_;
};

}  // namespace uniscan::sat
