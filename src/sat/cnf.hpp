// CNF building blocks shared by the Tseitin encoder (sat/encode.hpp), the
// CDCL solver (sat/solver.hpp), and the UNSAT certificates
// (sat/certificate.hpp).
//
// Literals follow the MiniSat convention: variable * 2 + sign, so a literal
// indexes watch lists and polarity tables directly and negation is one XOR.
#pragma once

#include <cstdint>
#include <vector>

namespace uniscan::sat {

using Var = std::uint32_t;

struct Lit {
  std::uint32_t x = 0xffffffffu;

  constexpr Var var() const noexcept { return x >> 1; }
  constexpr bool sign() const noexcept { return (x & 1u) != 0; }  // true = negated
  constexpr std::size_t index() const noexcept { return x; }

  friend constexpr Lit operator~(Lit l) noexcept { return Lit{l.x ^ 1u}; }
  friend constexpr bool operator==(Lit a, Lit b) noexcept { return a.x == b.x; }
  friend constexpr bool operator!=(Lit a, Lit b) noexcept { return a.x != b.x; }
  friend constexpr bool operator<(Lit a, Lit b) noexcept { return a.x < b.x; }
};

constexpr Lit lit(Var v, bool negated = false) noexcept {
  return Lit{v * 2 + (negated ? 1u : 0u)};
}
inline constexpr Lit kLitUndef{};

using Clause = std::vector<Lit>;

/// Growable clause container: the encoder's output and the certificate's
/// original-clause list. An empty clause makes the formula trivially UNSAT
/// (the encoder emits one when a fault has no observable miter output).
struct Cnf {
  Var num_vars = 0;
  std::vector<Clause> clauses;
  bool has_empty_clause = false;

  Var new_var() { return num_vars++; }
  void add(Clause c) {
    if (c.empty()) has_empty_clause = true;
    clauses.push_back(std::move(c));
  }
};

}  // namespace uniscan::sat
