// Tseitin CNF translation of the time-frame-expanded compiled CSR kernel
// (DESIGN.md §5l).
//
// The encoding is DUAL-RAIL over the simulator's Kleene 3-valued logic:
// every net of every frame carries two CNF literals (is-1, is-0), X = both
// false, and each gate's rails are defined by the exact 3-valued function
// the type-run kernel evaluates — including the optimistic MUX. The faulty
// machine is a second copy restricted to the fault's fanout cone (a net
// whose faulty rails are literal-identical to its good rails is aliased,
// never re-encoded), with the fault forced on the faulty component exactly
// as FrameModel::simulate forces it: stem faults on the gate output (or the
// boundary reading for Input/DFF stems), branch faults on the reading pin,
// DFF D-pin faults on the captured next state, transition faults through
// the one-cycle driven/previous chain.
//
// Decision variables — primary inputs of every frame, plus the frame-0
// state when `state_assignable` — are single Boolean variables whose rails
// are (v, ¬v): a model is always a fully specified test. With
// state_assignable=false the frame-0 state is the constant X pair, the
// simulator's all-X power-up.
//
// The miter asserts the ScanObserve observation (atpg/podem.hpp): a fault
// effect (good and faulty rails known and different) at a primary output of
// some frame, or in the state latched after some frame. UNSAT therefore
// means: no fully specified (SI, T) test of at most `frames` vectors
// exists — the same claim an exhausted PODEM search makes, since Kleene
// evaluation is monotone (a partial-assignment detection survives every
// completion, and a binary test is its own completion).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "fault/transition_fault.hpp"
#include "sat/cnf.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/logic3.hpp"

namespace uniscan::sat {

struct EncodeOptions {
  std::size_t frames = 1;        // unrolled depth (the |T| bound)
  bool state_assignable = true;  // (SI, T) model vs all-X power-up
  V3 tf_prev_init = V3::X;       // transition launch history entering frame 0
  /// Transition faults only: make the frame-0 launch history a decision
  /// variable instead of the tf_prev_init constant. Kleene X is the LEAST
  /// defined value, so an UNSAT under X history does NOT rule out a test
  /// under a concrete one — existentially quantifying the history is what
  /// turns UNSAT into a sound depth-bounded redundancy claim.
  bool tf_prev_assignable = false;
};

/// The encoded miter plus the decision-variable map needed to decode a
/// model back into (scan-in state, PI vectors).
struct MiterEncoding {
  Cnf cnf;
  std::size_t frames = 0;
  std::size_t num_inputs = 0;
  std::size_t num_dffs = 0;
  std::vector<Var> pi_var;     // frame-major [frame * num_inputs + pi]
  std::vector<Var> state_var;  // [dff], empty when !state_assignable
  std::optional<Var> tf_prev_var;  // set when tf_prev_assignable took effect
  // Debug rails (frame-major [frame * num_gates + gate]): the is-1/is-0
  // literals of every net in each machine, for differential tests.
  std::vector<Lit> good_one, good_zero, fault_one, fault_zero;
};

MiterEncoding encode_fault_miter(const CompiledNetlist& cnl, const Fault& fault,
                                 const EncodeOptions& options);
MiterEncoding encode_fault_miter(const CompiledNetlist& cnl, const TransitionFault& fault,
                                 const EncodeOptions& options);

}  // namespace uniscan::sat
