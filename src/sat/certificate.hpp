// UNSAT certificates emitted by the SAT engine (DESIGN.md §5l).
//
// A certificate is the original CNF plus an ADDITION-ONLY list of learned
// clauses ending with the empty clause. Every step must hold by reverse
// unit propagation (RUP) over the original clauses and the previously
// accepted steps: assuming the negation of the step's literals and unit
// propagating must yield a conflict. The solver never records deletions
// (its clause-DB reduction only shrinks the live database, while the proof
// keeps the cumulative set), which keeps the checker a propagation loop
// with no bookkeeping for removed clauses — propagation over a superset of
// the solver's live clauses derives at least as much.
//
// The independent replay checker lives in tests/ (sat_certificate_test.cpp)
// so validation never trusts the solver's internal state.
#pragma once

#include <cstddef>
#include <vector>

#include "sat/cnf.hpp"

namespace uniscan::sat {

struct UnsatCertificate {
  std::size_t num_vars = 0;
  std::vector<Clause> clauses;  // the original CNF, as handed to the solver
  std::vector<Clause> steps;    // learned additions, in order; last is empty
};

}  // namespace uniscan::sat
