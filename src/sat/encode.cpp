#include "sat/encode.hpp"

#include <cstddef>
#include <vector>

namespace uniscan::sat {
namespace {

/// Dual-rail value of one net in one machine copy: `one` true means the net
/// is 1, `zero` true means 0, both false means X. Mirrors the W3T plane
/// encoding (sim/logic3.hpp) literal for literal, so every gate formula
/// below is the CNF shadow of the corresponding w3_* kernel op.
struct RailPair {
  Lit one;
  Lit zero;
};

bool same(RailPair a, RailPair b) noexcept { return a.one == b.one && a.zero == b.zero; }

/// Rails are complementary exactly when the value is known-binary; binary
/// operands let every op emit one Tseitin definition instead of two and keep
/// the result binary, so a fully assignable miter degenerates to a plain
/// Boolean encoding.
bool binary(RailPair p) noexcept { return p.zero == ~p.one; }

class Builder {
 public:
  explicit Builder(Cnf& cnf) : cnf_(cnf) {
    t_ = lit(cnf_.new_var());  // var 0: constant true, pinned by a unit clause
    cnf_.add({t_});
  }

  Lit t() const noexcept { return t_; }
  Lit f() const noexcept { return ~t_; }

  RailPair pair_const(V3 v) const noexcept {
    if (v == V3::Zero) return {f(), t()};
    if (v == V3::One) return {t(), f()};
    return {f(), f()};
  }
  RailPair pair_var(Var v) const noexcept { return {lit(v), ~lit(v)}; }

  Lit mk_and2(Lit a, Lit b) {
    if (a == f() || b == f() || a == ~b) return f();
    if (a == t() || a == b) return b;
    if (b == t()) return a;
    const Lit d = lit(cnf_.new_var());
    cnf_.add({~d, a});
    cnf_.add({~d, b});
    cnf_.add({d, ~a, ~b});
    return d;
  }
  Lit mk_or2(Lit a, Lit b) {
    if (a == t() || b == t() || a == ~b) return t();
    if (a == f() || a == b) return b;
    if (b == f()) return a;
    const Lit d = lit(cnf_.new_var());
    cnf_.add({d, ~a});
    cnf_.add({d, ~b});
    cnf_.add({~d, a, b});
    return d;
  }
  Lit mk_or3(Lit a, Lit b, Lit c) { return mk_or2(mk_or2(a, b), c); }
  Lit mk_xor2(Lit a, Lit b) {
    if (a == f()) return b;
    if (b == f()) return a;
    if (a == t()) return ~b;
    if (b == t()) return ~a;
    if (a == b) return f();
    if (a == ~b) return t();
    const Lit d = lit(cnf_.new_var());
    cnf_.add({~d, a, b});
    cnf_.add({~d, ~a, ~b});
    cnf_.add({d, a, ~b});
    cnf_.add({d, ~a, b});
    return d;
  }

  // Kleene connectives over rail pairs (the w3_* ops, clause for clause).
  RailPair knot(RailPair a) { return {a.zero, a.one}; }
  RailPair kand(RailPair a, RailPair b) {
    const Lit one = mk_and2(a.one, b.one);
    if (binary(a) && binary(b)) return {one, ~one};
    return {one, mk_or2(a.zero, b.zero)};
  }
  RailPair kor(RailPair a, RailPair b) {
    const Lit one = mk_or2(a.one, b.one);
    if (binary(a) && binary(b)) return {one, ~one};
    return {one, mk_and2(a.zero, b.zero)};
  }
  RailPair kxor(RailPair a, RailPair b) {
    if (binary(a) && binary(b)) {
      const Lit one = mk_xor2(a.one, b.one);
      return {one, ~one};
    }
    return {mk_or2(mk_and2(a.one, b.zero), mk_and2(a.zero, b.one)),
            mk_or2(mk_and2(a.one, b.one), mk_and2(a.zero, b.zero))};
  }
  RailPair kmux(RailPair d0, RailPair d1, RailPair s) {
    if (binary(d0) && binary(d1) && binary(s)) {
      const Lit one = mk_or2(mk_and2(s.zero, d0.one), mk_and2(s.one, d1.one));
      return {one, ~one};
    }
    // Optimistic-X MUX: the (d0 & d1) consensus terms are what make an
    // X select with agreeing data inputs produce the agreed value.
    return {mk_or3(mk_and2(s.zero, d0.one), mk_and2(s.one, d1.one), mk_and2(d0.one, d1.one)),
            mk_or3(mk_and2(s.zero, d0.zero), mk_and2(s.one, d1.zero), mk_and2(d0.zero, d1.zero))};
  }

  RailPair eval_gate(GateType type, const std::vector<RailPair>& in) {
    switch (type) {
      case GateType::Buf: return in[0];
      case GateType::Not: return knot(in[0]);
      case GateType::And:
      case GateType::Nand: {
        RailPair acc = in[0];
        for (std::size_t p = 1; p < in.size(); ++p) acc = kand(acc, in[p]);
        return type == GateType::Nand ? knot(acc) : acc;
      }
      case GateType::Or:
      case GateType::Nor: {
        RailPair acc = in[0];
        for (std::size_t p = 1; p < in.size(); ++p) acc = kor(acc, in[p]);
        return type == GateType::Nor ? knot(acc) : acc;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        RailPair acc = in[0];
        for (std::size_t p = 1; p < in.size(); ++p) acc = kxor(acc, in[p]);
        return type == GateType::Xnor ? knot(acc) : acc;
      }
      case GateType::Mux2: return kmux(in[0], in[1], in[2]);
      case GateType::Const0: return pair_const(V3::Zero);
      case GateType::Const1: return pair_const(V3::One);
      case GateType::Input:
      case GateType::Dff: break;  // boundary gates never reach eval
    }
    return pair_const(V3::X);
  }

  /// is_d_or_dbar over rails: both machines known and different.
  Lit mk_diff(RailPair g, RailPair f) {
    return mk_or2(mk_and2(g.one, f.zero), mk_and2(g.zero, f.one));
  }

 private:
  Cnf& cnf_;
  Lit t_;
};

MiterEncoding encode_impl(const CompiledNetlist& cnl, const Fault& fault, bool is_transition,
                          bool slow_to_rise, const EncodeOptions& options) {
  const std::size_t ng = cnl.num_gates();
  const auto& inputs = cnl.inputs();
  const auto& dffs = cnl.dffs();
  const auto& dff_d = cnl.dff_d();
  const std::uint32_t* fanin_off = cnl.fanin_offsets();
  const GateId* fanin_ids = cnl.fanin_id_data();
  const std::size_t npi = inputs.size();
  const std::size_t ndff = dffs.size();

  MiterEncoding enc;
  enc.frames = options.frames;
  enc.num_inputs = npi;
  enc.num_dffs = ndff;
  Builder b(enc.cnf);

  // The one forcing site, identical to FrameModel::forced_faulty: a stuck-at
  // fault drives a constant; a transition fault needs the faulty driven value
  // in consecutive frames (STR: this AND previous, STF: this OR previous).
  const auto force = [&](RailPair driven, RailPair prev) -> RailPair {
    if (!is_transition) return b.pair_const(fault.stuck_one ? V3::One : V3::Zero);
    return slow_to_rise ? b.kand(driven, prev) : b.kor(driven, prev);
  };

  // Per-net values this frame; the faulty copy aliases the good copy (same
  // literals) outside the fault's fanout cone, discovered on the fly: a gate
  // re-encodes in the faulty machine only if it is the fault site or reads a
  // net whose faulty rails already differ.
  std::vector<RailPair> gval(ng, b.pair_const(V3::X));
  std::vector<RailPair> fval(ng, b.pair_const(V3::X));
  std::vector<RailPair> good_state(ndff), faulty_state(ndff);
  if (options.state_assignable) {
    enc.state_var.resize(ndff);
    for (std::size_t j = 0; j < ndff; ++j) {
      enc.state_var[j] = enc.cnf.new_var();
      good_state[j] = faulty_state[j] = b.pair_var(enc.state_var[j]);
    }
  } else {
    for (std::size_t j = 0; j < ndff; ++j)
      good_state[j] = faulty_state[j] = b.pair_const(V3::X);  // all-X power-up
  }

  enc.pi_var.resize(options.frames * npi);
  RailPair prev;
  if (is_transition && options.tf_prev_assignable) {
    enc.tf_prev_var = enc.cnf.new_var();
    prev = b.pair_var(*enc.tf_prev_var);
  } else {
    prev = b.pair_const(options.tf_prev_init);
  }
  std::vector<Lit> detect;
  std::vector<RailPair> ins_g, ins_f;

  const GateType fault_gate_type = cnl.type(fault.gate);
  const bool stem_on_boundary =
      fault.pin == kStemPin &&
      (fault_gate_type == GateType::Input || fault_gate_type == GateType::Dff);

  for (std::size_t f = 0; f < options.frames; ++f) {
    // Frame boundary: PIs are fresh decision variables shared by both
    // machines; DFF outputs read the carried state pairs.
    for (std::size_t i = 0; i < npi; ++i) {
      const Var v = enc.cnf.new_var();
      enc.pi_var[f * npi + i] = v;
      gval[inputs[i]] = fval[inputs[i]] = b.pair_var(v);
    }
    for (std::size_t j = 0; j < ndff; ++j) {
      gval[dffs[j]] = good_state[j];
      fval[dffs[j]] = faulty_state[j];
    }

    RailPair driven_this = b.pair_const(V3::X);
    if (stem_on_boundary) {
      driven_this = fval[fault.gate];
      fval[fault.gate] = force(driven_this, prev);
    }

    // Combinational core in the compiled evaluation order.
    for (GateId g : cnl.eval_order()) {
      const std::uint32_t lo = fanin_off[g];
      const std::size_t n = fanin_off[g + 1] - lo;
      ins_g.clear();
      for (std::size_t p = 0; p < n; ++p) ins_g.push_back(gval[fanin_ids[lo + p]]);
      gval[g] = b.eval_gate(cnl.type(g), ins_g);

      const bool is_fault_gate = g == fault.gate;
      bool in_cone = is_fault_gate;
      for (std::size_t p = 0; p < n && !in_cone; ++p)
        in_cone = !same(fval[fanin_ids[lo + p]], gval[fanin_ids[lo + p]]);
      if (!in_cone) {
        fval[g] = gval[g];
        continue;
      }
      ins_f.clear();
      for (std::size_t p = 0; p < n; ++p) ins_f.push_back(fval[fanin_ids[lo + p]]);
      if (is_fault_gate && fault.pin != kStemPin) {
        driven_this = ins_f[static_cast<std::size_t>(fault.pin)];
        ins_f[static_cast<std::size_t>(fault.pin)] = force(driven_this, prev);
      }
      RailPair out = b.eval_gate(cnl.type(g), ins_f);
      if (is_fault_gate && fault.pin == kStemPin) {
        driven_this = out;
        out = force(out, prev);
      }
      fval[g] = out;
    }

    // Observation at a primary output of this frame.
    for (GateId po : cnl.outputs())
      if (!same(gval[po], fval[po])) detect.push_back(b.mk_diff(gval[po], fval[po]));

    for (std::size_t g = 0; g < ng; ++g) {
      enc.good_one.push_back(gval[g].one);
      enc.good_zero.push_back(gval[g].zero);
      enc.fault_one.push_back(fval[g].one);
      enc.fault_zero.push_back(fval[g].zero);
    }

    // Capture (with DFF D-pin branch forcing) and latched-effect observation.
    for (std::size_t j = 0; j < ndff; ++j) {
      const RailPair dg = gval[dff_d[j]];
      RailPair df = fval[dff_d[j]];
      if (fault.pin == 0 && fault.gate == dffs[j] && fault_gate_type == GateType::Dff) {
        driven_this = df;
        df = force(df, prev);
      }
      good_state[j] = dg;
      faulty_state[j] = df;
      if (!same(dg, df)) detect.push_back(b.mk_diff(dg, df));
    }
    prev = driven_this;
  }

  // ScanObserve: some frame's PO or latched state shows the effect. A fault
  // whose cone never reaches an observation point has no detect literals and
  // the empty clause makes the miter trivially UNSAT.
  enc.cnf.add(std::move(detect));
  return enc;
}

}  // namespace

MiterEncoding encode_fault_miter(const CompiledNetlist& cnl, const Fault& fault,
                                 const EncodeOptions& options) {
  return encode_impl(cnl, fault, /*is_transition=*/false, /*slow_to_rise=*/false, options);
}

MiterEncoding encode_fault_miter(const CompiledNetlist& cnl, const TransitionFault& fault,
                                 const EncodeOptions& options) {
  return encode_impl(cnl, Fault{fault.gate, fault.pin, /*stuck_one=*/!fault.slow_to_rise},
                     /*is_transition=*/true, fault.slow_to_rise, options);
}

}  // namespace uniscan::sat
