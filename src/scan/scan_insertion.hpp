// Scan chain insertion: C -> C_scan.
//
// Every D flip-flop gets a 2:1 multiplexer in front of its D pin:
//   D' = MUX(d0 = functional D, d1 = previous scan cell (or scan_inp), sel = scan_sel)
// scan_sel and scan_inp are appended to the primary inputs; scan_out (the Q
// of the last cell in the chain) is appended to the primary outputs — the
// paper's view of scan lines as conventional PIs/POs.
//
// The chain order equals the flip-flop order in the circuit description
// (Netlist::dffs()), as in the paper's Section 5. Multiple balanced chains
// are supported as an extension.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace uniscan {

struct ScanChain {
  std::size_t scan_inp_index = 0;  // position of this chain's scan-in among PIs
  std::size_t scan_out_index = 0;  // position of this chain's scan-out among POs
  std::vector<GateId> cells;       // FFs in shift order: cells[0] is fed by scan_inp,
                                   // cells.back() drives scan_out
};

struct ScanNets {
  std::size_t scan_sel_index = 0;  // position of scan_sel among PIs
  std::vector<ScanChain> chains;
};

struct ScanCircuit {
  Netlist netlist;  // finalized C_scan
  ScanNets nets;

  const ScanChain& chain(std::size_t i = 0) const { return nets.chains[i]; }
  std::size_t scan_sel_index() const noexcept { return nets.scan_sel_index; }
  /// Length of the longest chain (the N_SV of the paper for a single chain).
  std::size_t max_chain_length() const;
};

/// Insert `num_chains` balanced scan chains (default 1, the paper's setup).
/// The input netlist must be finalized and have at least one DFF.
ScanCircuit insert_scan(const Netlist& c, std::size_t num_chains = 1);

}  // namespace uniscan
