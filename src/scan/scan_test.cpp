#include "scan/scan_test.hpp"

namespace uniscan {

std::string scan_test_to_string(const ScanTest& t) {
  std::string s;
  for (V3 v : t.scan_in) s.push_back(to_char(v));
  s += " |";
  for (const auto& vec : t.vectors) {
    s.push_back(' ');
    for (V3 v : vec) s.push_back(to_char(v));
  }
  return s;
}

}  // namespace uniscan
