// Conventional scan-based tests (SI, T): the representation used by the
// paper's "first" and "second" approaches, and the input of the Section-3
// translation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/logic3.hpp"

namespace uniscan {

/// One scan-based test: scan in `scan_in` (scan_in[j] is the value loaded
/// into flip-flop j, in Netlist::dffs() order — with multiple chains the
/// contiguous chain slices load in parallel), then apply the primary-input
/// vectors of `vectors` (over the ORIGINAL circuit inputs, without the scan
/// lines), then scan out. Under the first approach `vectors` has length 1;
/// under the second it may be longer.
struct ScanTest {
  std::vector<V3> scan_in;
  std::vector<std::vector<V3>> vectors;
};

struct ScanTestSet {
  std::size_t num_original_inputs = 0;
  std::size_t chain_length = 0;  // N_SV (max chain length with multiple chains)
  std::vector<ScanTest> tests;

  /// Clock cycles to apply the whole set with COMPLETE scan operations,
  /// overlapping each test's scan-out with the next test's scan-in:
  ///   sum_i (N_SV + |T_i|) + N_SV  (final scan-out not overlapped).
  std::size_t application_cycles() const {
    std::size_t cyc = chain_length;  // trailing scan-out of the last test
    for (const auto& t : tests) cyc += chain_length + t.vectors.size();
    return cyc;
  }

  /// Total functional (non-shift) cycles.
  std::size_t functional_cycles() const {
    std::size_t n = 0;
    for (const auto& t : tests) n += t.vectors.size();
    return n;
  }
};

/// Compact textual form for tests/examples: "011 | 0000 1101".
std::string scan_test_to_string(const ScanTest& t);

}  // namespace uniscan
