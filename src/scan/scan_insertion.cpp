#include "scan/scan_insertion.hpp"

#include <algorithm>
#include <stdexcept>

namespace uniscan {

std::size_t ScanCircuit::max_chain_length() const {
  std::size_t m = 0;
  for (const auto& ch : nets.chains) m = std::max(m, ch.cells.size());
  return m;
}

ScanCircuit insert_scan(const Netlist& c, std::size_t num_chains) {
  if (!c.is_finalized()) throw std::invalid_argument("insert_scan: netlist not finalized");
  if (c.num_dffs() == 0) throw std::invalid_argument("insert_scan: circuit has no flip-flops");
  if (num_chains == 0 || num_chains > c.num_dffs())
    throw std::invalid_argument("insert_scan: bad chain count");

  Netlist out(c.name() + "_scan");

  // Copy all gates in id order so that new ids equal old ids. Fanins may
  // reference gates not yet copied; that is fine because ids are stable.
  for (GateId g = 0; g < c.num_gates(); ++g) {
    const Gate& gate = c.gate(g);
    switch (gate.type) {
      case GateType::Input:
        out.add_input(gate.name);
        break;
      case GateType::Dff:
        out.add_dff(gate.name, gate.fanins[0]);
        break;
      default:
        out.add_gate(gate.type, gate.name, gate.fanins);
        break;
    }
  }
  for (GateId po : c.outputs()) out.add_output(po);

  ScanNets nets;
  const GateId scan_sel = out.add_input("scan_sel");
  nets.scan_sel_index = out.num_inputs() - 1;

  // Split the FFs into `num_chains` contiguous, balanced chains.
  const std::size_t n = c.num_dffs();
  const std::size_t base_len = n / num_chains;
  const std::size_t extra = n % num_chains;
  std::size_t next_ff = 0;
  for (std::size_t ci = 0; ci < num_chains; ++ci) {
    ScanChain chain;
    const std::size_t len = base_len + (ci < extra ? 1 : 0);
    const std::string suffix = num_chains == 1 ? std::string{} : "_" + std::to_string(ci);

    const GateId scan_inp = out.add_input("scan_inp" + suffix);
    chain.scan_inp_index = out.num_inputs() - 1;

    GateId prev = scan_inp;
    for (std::size_t k = 0; k < len; ++k) {
      const GateId ff = c.dffs()[next_ff++];
      const GateId functional_d = c.gate(ff).fanins[0];
      const GateId mux = out.add_gate(GateType::Mux2, "scan_mux_" + c.gate(ff).name,
                                      {functional_d, prev, scan_sel});
      out.set_dff_input(ff, mux);
      chain.cells.push_back(ff);
      prev = ff;
    }

    // scan_out is the Q of the last cell. If that net already is a PO, tap
    // it through a buffer so the PO list stays duplicate-free.
    GateId scan_out_net = prev;
    if (out.output_index(scan_out_net).has_value())
      scan_out_net = out.add_gate(GateType::Buf, "scan_out_buf" + suffix, {prev});
    out.add_output(scan_out_net);
    chain.scan_out_index = out.num_outputs() - 1;

    nets.chains.push_back(std::move(chain));
  }

  out.finalize();
  return ScanCircuit{std::move(out), std::move(nets)};
}

}  // namespace uniscan
