#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "sim/sequential_sim.hpp"

namespace uniscan {

SequenceMetrics compute_metrics(const ScanCircuit& sc, const TestSequence& seq) {
  SequenceMetrics m;
  m.length = seq.length();
  const std::size_t sel = sc.scan_sel_index();
  const std::size_t chain_len = sc.max_chain_length();

  std::size_t run = 0;
  for (std::size_t t = 0; t <= seq.length(); ++t) {
    const bool shifting = t < seq.length() && seq.at(t, sel) == V3::One;
    if (shifting) {
      ++m.scan_vectors;
      ++run;
    } else if (run) {
      ++m.scan_operations;
      ++m.scan_op_histogram[run];
      m.longest_scan_op = std::max(m.longest_scan_op, run);
      if (run >= chain_len) ++m.complete_scan_ops;
      run = 0;
    }
  }

  for (std::size_t t = 1; t < seq.length(); ++t)
    for (std::size_t i = 0; i < seq.num_inputs(); ++i) {
      const V3 a = seq.at(t - 1, i);
      const V3 b = seq.at(t, i);
      if (a != V3::X && b != V3::X && a != b) ++m.input_transitions;
    }

  const SequentialSimulator sim(sc.netlist);
  const SimTrace trace = sim.simulate(seq, sim.initial_state());
  for (std::size_t t = 1; t < trace.state.size(); ++t)
    for (std::size_t j = 0; j < sc.netlist.num_dffs(); ++j) {
      const V3 a = trace.state[t - 1][j];
      const V3 b = trace.state[t][j];
      if (a != V3::X && b != V3::X && a != b) ++m.state_transitions;
    }
  return m;
}

std::string format_metrics(const SequenceMetrics& m) {
  std::ostringstream os;
  os << "cycles:            " << m.length << "\n";
  os << "scan vectors:      " << m.scan_vectors << " (" << static_cast<int>(m.scan_fraction() * 100)
     << "% of cycles)\n";
  os << "scan operations:   " << m.scan_operations << " (longest " << m.longest_scan_op
     << ", complete " << m.complete_scan_ops << ", limited "
     << m.scan_operations - m.complete_scan_ops << ")\n";
  os << "input transitions: " << m.input_transitions << "\n";
  os << "state transitions: " << m.state_transitions << "\n";
  return os.str();
}

}  // namespace uniscan
