// Umbrella header: the public API of the uniscan library.
//
// uniscan reproduces "A New Approach to Test Generation and Test Compaction
// for Scan Circuits" (Pomeranz & Reddy, DATE 2003): scan lines are treated
// as ordinary circuit inputs/outputs, test generation and static compaction
// run on the resulting sequential circuit, and limited scan operations fall
// out for free.
//
// Typical use:
//   Netlist c = read_bench_file("s298.bench");      // or make_s27()
//   ScanCircuit sc = insert_scan(c);
//   AtpgResult r = generate_tests(sc);              // Section-2 generator
//   FaultList fl = FaultList::collapsed(sc.netlist);
//   auto restored = restoration_compact(sc.netlist, r.sequence, fl.faults());
//   auto omitted  = omission_compact(sc.netlist, restored.sequence, fl.faults());
// or one call:
//   auto report = run_generate_and_compact(c);
#pragma once

#include "atpg/podem.hpp"
#include "atpg/scan_knowledge.hpp"
#include "atpg/seq_atpg.hpp"
#include "baseline/comb_atpg.hpp"
#include "baseline/scan_testset_gen.hpp"
#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "core/pipeline.hpp"
#include "corpus/corpus.hpp"
#include "corpus/golden.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "diag/diagnosis.hpp"
#include "fault/fault_list.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_insertion.hpp"
#include "scan/scan_test.hpp"
#include "atpg/ndetect.hpp"
#include "atpg/redundancy.hpp"
#include "atpg/transition_atpg.hpp"
#include "sim/transition_sim.hpp"
#include "sim/event_sim.hpp"
#include "sim/fault_sim.hpp"
#include "sim/fault_sim_session.hpp"
#include "sim/sequence.hpp"
#include "sim/sequence_io.hpp"
#include "sim/sequential_sim.hpp"
#include "translate/translation.hpp"
#include "workloads/circuits.hpp"
#include "workloads/suite.hpp"
#include "workloads/synth_gen.hpp"
