// High-level flows: everything the paper's experiments do, one call each.
//
//  * run_generate_and_compact — Section 2 generation on C_scan, then [23]
//    restoration, then [22] omission (Tables 5 and 6).
//  * run_translate_and_compact — baseline complete-scan test set, Section-3
//    translation, then the same two compactions (Table 7).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "atpg/seq_atpg.hpp"
#include "baseline/scan_testset_gen.hpp"
#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "netlist/netlist.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "scan/scan_insertion.hpp"
#include "translate/translation.hpp"
#include "util/cancel.hpp"
#include "util/fault_inject.hpp"
#include "util/thread_pool.hpp"
#include "workloads/suite.hpp"

namespace uniscan {

/// Vector counts of a unified sequence: total and how many hold scan_sel = 1
/// (the paper reports both in Tables 6 and 7).
struct SequenceStats {
  std::size_t total = 0;
  std::size_t scan = 0;
};

SequenceStats sequence_stats(const ScanCircuit& sc, const TestSequence& seq);

struct PipelineConfig {
  AtpgOptions atpg;
  RestorationOptions restoration;
  OmissionOptions omission;
  BaselineOptions baseline;
  bool run_baseline = true;  // generate the "[26]"-style comparison column

  // ---- deadline / failure policy (DESIGN.md §5f) ---------------------------
  /// Whole-run wall-clock budget in seconds (0 = unlimited). In a suite run
  /// the deadline is anchored ONCE at suite start and shared by every
  /// circuit; in a single-circuit run it covers that circuit's flow.
  double time_budget_secs = 0;
  /// Per-circuit budget in seconds (0 = unlimited), anchored when the
  /// circuit's flow starts. Combines with `time_budget_secs`: whichever
  /// deadline fires first cancels the work.
  double per_circuit_budget_secs = 0;
  /// Externally supplied parent token (e.g. a Ctrl-C handler). Budgets
  /// derive children from it, so it cancels everything regardless of them.
  CancelToken cancel;
  /// When true, a circuit failure aborts the whole suite run (the failing
  /// task's exception propagates). Default: failures are isolated into
  /// per-task TaskFailure records and the other circuits finish normally.
  bool fail_fast = false;
};

/// Structured record of one circuit task that failed: which circuit, which
/// pipeline stage raised, and the exception text. Rendered as a FAILED row
/// by the table binaries and as a `failures[]` entry in bench JSON.
struct TaskFailure {
  std::string circuit;
  std::string stage;  // "unknown" when the exception carried no stage tag
  std::string what;
};

/// Exception wrapper that tags an escaping error with the pipeline stage it
/// came from, so suite isolation can report WHERE a circuit failed.
class StageError : public std::runtime_error {
 public:
  StageError(std::string stage, const std::string& what)
      : std::runtime_error(what), stage_(std::move(stage)) {}
  const std::string& stage() const noexcept { return stage_; }

 private:
  std::string stage_;
};

/// Run one pipeline stage: fire the deterministic fault-injection hook
/// (UNISCAN_FAULT_INJECT=<circuit>:<stage>), then the stage body; any
/// escaping std::exception is rethrown as StageError tagged with `stage`.
/// Already-tagged errors from nested stages pass through unchanged.
template <typename Fn>
auto run_stage(const std::string& circuit, const char* stage, Fn&& fn) {
  const obs::TraceSpan span(stage, circuit);
  try {
    maybe_inject_fault(circuit, stage);
    return fn();
  } catch (const StageError&) {
    throw;
  } catch (const std::exception& e) {
    throw StageError(stage, e.what());
  }
}

/// One row of Tables 5+6.
struct GenerateCompactReport {
  std::string circuit;
  std::size_t num_inputs = 0;  // C_scan inputs (paper's `inp`, includes scan lines)
  std::size_t num_dffs = 0;
  AtpgResult atpg;

  SequenceStats raw, restored, omitted;
  CompactionResult restoration;
  CompactionResult omission;
  /// Faults detected by the final compacted sequence that the generated
  /// sequence did not detect (Table 6 `ext det`).
  std::size_t extra_detected = 0;

  bool baseline_run = false;
  BaselineResult baseline;  // valid when baseline_run

  /// Per-stage wall time and counter deltas, in execution order (the bench
  /// JSON's `stages` rows). Deltas are exact: a circuit's whole flow runs on
  /// one pool worker (nested fan-out is inline), so the worker-shard scope
  /// sees exactly this circuit's work.
  std::vector<obs::StageStat> stages;

  /// True when any stage's deadline fired: the report holds valid, verified
  /// partial results (best-so-far sequence, less-compacted selection).
  bool timed_out() const {
    return atpg.timed_out || restoration.timed_out || omission.timed_out ||
           (baseline_run && baseline.timed_out);
  }
};

GenerateCompactReport run_generate_and_compact(const Netlist& c, const PipelineConfig& config = {});

/// Prebuilt per-circuit artifacts: the scan-inserted netlist and its
/// collapsed fault list. Both are pure functions of the source netlist
/// content (insert_scan and FaultList::collapsed are deterministic), so a
/// flow run from cached artifacts is bit-identical to one that rebuilds them
/// — the contract the serve-layer ArtifactCache (DESIGN.md §5k) relies on.
/// shared_ptr because many concurrent jobs may run over one cache entry.
struct CircuitArtifacts {
  std::string circuit;  // netlist name, used for stage tagging / injection
  std::shared_ptr<const ScanCircuit> scan;
  std::shared_ptr<const FaultList> faults;
};

/// Build artifacts directly from a source netlist (the cache-miss path; also
/// warms Netlist::compiled_shared() so later simulators skip the compile).
CircuitArtifacts build_circuit_artifacts(const Netlist& c, std::size_t num_chains = 1);

/// Flow overloads over prebuilt artifacts: identical to the Netlist
/// overloads except the "scan" and "faults" stages are skipped entirely —
/// their absence from `report.stages` is how warm-cache runs prove they did
/// no setup work. Results are bit-identical to the Netlist overloads.
GenerateCompactReport run_generate_and_compact(const CircuitArtifacts& a,
                                               const PipelineConfig& config = {});

/// One row of Table 7.
struct TranslateCompactReport {
  std::string circuit;
  BaselineResult baseline;
  SequenceStats translated, restored, omitted;
  CompactionResult restoration;
  CompactionResult omission;

  /// Per-stage wall time and counter deltas (see GenerateCompactReport).
  std::vector<obs::StageStat> stages;

  /// True when any stage's deadline fired (partial but consistent results).
  bool timed_out() const {
    return baseline.timed_out || restoration.timed_out || omission.timed_out;
  }
};

TranslateCompactReport run_translate_and_compact(const Netlist& c, const PipelineConfig& config = {});
TranslateCompactReport run_translate_and_compact(const CircuitArtifacts& a,
                                                 const PipelineConfig& config = {});

/// Fan `fn(index)` for index in [0, n) across ThreadPool::global() and merge
/// the results in input order. Each result is written only into its
/// task-indexed slot, so the returned vector is bit-identical at any thread
/// count (the pool's determinism contract, DESIGN.md §5d). Issued from
/// inside a pool task, the fan-out degenerates to an inline loop.
template <typename Fn>
auto run_suite_tasks(std::size_t n, Fn&& fn) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  const obs::TraceSpan span("suite");
  std::vector<R> out(n);
  ThreadPool::global().parallel_for(n,
                                    [&](std::size_t task, std::size_t) { out[task] = fn(task); });
  return out;
}

/// Per-circuit parallel versions of the two flows: one task per suite entry,
/// reports returned in suite order. These back the bench/table5-table8
/// binaries' --threads=N flag.
std::vector<GenerateCompactReport> run_suite_generate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config = {},
    const std::string& bench_dir = {});
std::vector<TranslateCompactReport> run_suite_translate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config = {},
    const std::string& bench_dir = {});

/// Result slot of one isolated suite task: the value when the task finished,
/// or the failure record when it threw. Exactly one of the two is
/// meaningful; `value` is default-constructed on failure.
template <typename R>
struct TaskOutcome {
  R value{};
  std::optional<TaskFailure> failure;

  bool failed() const noexcept { return failure.has_value(); }
};

/// Anchor a suite-wide `time_budget_secs` ONCE: the returned config carries
/// the started deadline as its parent token (and a zeroed budget), so every
/// circuit task shares a single clock instead of each re-starting it. The
/// suite runners below call this themselves; table binaries that fan out
/// with their own lambdas must call it before the fan-out.
PipelineConfig anchor_suite_budget(const PipelineConfig& config);

/// Failure-isolated fan-out over a suite: like run_suite_tasks, but a task
/// that throws is captured into its own slot's TaskFailure instead of
/// aborting the run — the other circuits complete normally and their slots
/// are bit-identical to a run without the failure (pool determinism
/// contract, DESIGN.md §5d/§5f). With `fail_fast` the exception escapes
/// instead (the pool rethrows the LOWEST-index failing task's exception
/// after draining, deterministically).
template <typename Fn>
auto run_suite_tasks_isolated(const std::vector<SuiteEntry>& suite, Fn&& fn,
                              bool fail_fast = false) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  const obs::TraceSpan span("suite");
  std::vector<TaskOutcome<R>> out(suite.size());
  ThreadPool::global().parallel_for(suite.size(), [&](std::size_t task, std::size_t) {
    try {
      out[task].value = fn(task);
    } catch (...) {
      if (fail_fast) throw;
      try {
        throw;
      } catch (const StageError& e) {
        out[task].failure = TaskFailure{suite[task].name, e.stage(), e.what()};
      } catch (const std::exception& e) {
        out[task].failure = TaskFailure{suite[task].name, "unknown", e.what()};
      } catch (...) {
        out[task].failure = TaskFailure{suite[task].name, "unknown", "non-standard exception"};
      }
    }
  });
  return out;
}

/// run_suite_tasks_isolated + ordered streaming: `emit(index, outcome)` is
/// called for every slot, in suite order, as soon as the completed prefix
/// grows — a 100-circuit run under --time-budget shows its finished rows
/// while the stragglers still compute, and the emitted order is identical
/// to the buffered runners' (the stable-merge contract, DESIGN.md §5d:
/// emission is keyed on slot index, never on completion order). `emit`
/// runs under an internal mutex on whichever worker finished the
/// prefix-extending task; keep it cheap (format + print one row). With
/// `fail_fast`, the first (lowest-index) failure escapes after the pool
/// drains and rows past it are not emitted.
template <typename Fn, typename Emit>
auto run_suite_tasks_streaming(const std::vector<SuiteEntry>& suite, Fn&& fn, Emit&& emit,
                               bool fail_fast = false) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  const obs::TraceSpan span("suite");
  std::vector<TaskOutcome<R>> out(suite.size());
  std::vector<char> done(suite.size(), 0);
  std::mutex mu;
  std::size_t next_to_emit = 0;
  ThreadPool::global().parallel_for(suite.size(), [&](std::size_t task, std::size_t) {
    try {
      out[task].value = fn(task);
    } catch (...) {
      if (fail_fast) throw;
      try {
        throw;
      } catch (const StageError& e) {
        out[task].failure = TaskFailure{suite[task].name, e.stage(), e.what()};
      } catch (const std::exception& e) {
        out[task].failure = TaskFailure{suite[task].name, "unknown", e.what()};
      } catch (...) {
        out[task].failure = TaskFailure{suite[task].name, "unknown", "non-standard exception"};
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    done[task] = 1;
    while (next_to_emit < out.size() && done[next_to_emit]) {
      emit(next_to_emit, out[next_to_emit]);
      ++next_to_emit;
    }
  });
  return out;
}

/// Isolated + deadline-aware versions of the suite flows. A suite-wide
/// `time_budget_secs` is anchored ONCE here (not per circuit);
/// `per_circuit_budget_secs` is anchored inside each circuit's flow. Each
/// failing circuit becomes a TaskFailure slot; the rest finish normally.
std::vector<TaskOutcome<GenerateCompactReport>> run_suite_generate_and_compact_isolated(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config = {},
    const std::string& bench_dir = {});
std::vector<TaskOutcome<TranslateCompactReport>> run_suite_translate_and_compact_isolated(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config = {},
    const std::string& bench_dir = {});

}  // namespace uniscan
