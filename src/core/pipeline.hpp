// High-level flows: everything the paper's experiments do, one call each.
//
//  * run_generate_and_compact — Section 2 generation on C_scan, then [23]
//    restoration, then [22] omission (Tables 5 and 6).
//  * run_translate_and_compact — baseline complete-scan test set, Section-3
//    translation, then the same two compactions (Table 7).
#pragma once

#include <string>
#include <type_traits>
#include <vector>

#include "atpg/seq_atpg.hpp"
#include "baseline/scan_testset_gen.hpp"
#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_insertion.hpp"
#include "translate/translation.hpp"
#include "util/thread_pool.hpp"
#include "workloads/suite.hpp"

namespace uniscan {

/// Vector counts of a unified sequence: total and how many hold scan_sel = 1
/// (the paper reports both in Tables 6 and 7).
struct SequenceStats {
  std::size_t total = 0;
  std::size_t scan = 0;
};

SequenceStats sequence_stats(const ScanCircuit& sc, const TestSequence& seq);

struct PipelineConfig {
  AtpgOptions atpg;
  RestorationOptions restoration;
  OmissionOptions omission;
  BaselineOptions baseline;
  bool run_baseline = true;  // generate the "[26]"-style comparison column
};

/// One row of Tables 5+6.
struct GenerateCompactReport {
  std::string circuit;
  std::size_t num_inputs = 0;  // C_scan inputs (paper's `inp`, includes scan lines)
  std::size_t num_dffs = 0;
  AtpgResult atpg;

  SequenceStats raw, restored, omitted;
  CompactionResult restoration;
  CompactionResult omission;
  /// Faults detected by the final compacted sequence that the generated
  /// sequence did not detect (Table 6 `ext det`).
  std::size_t extra_detected = 0;

  bool baseline_run = false;
  BaselineResult baseline;  // valid when baseline_run
};

GenerateCompactReport run_generate_and_compact(const Netlist& c, const PipelineConfig& config = {});

/// One row of Table 7.
struct TranslateCompactReport {
  std::string circuit;
  BaselineResult baseline;
  SequenceStats translated, restored, omitted;
  CompactionResult restoration;
  CompactionResult omission;
};

TranslateCompactReport run_translate_and_compact(const Netlist& c, const PipelineConfig& config = {});

/// Fan `fn(index)` for index in [0, n) across ThreadPool::global() and merge
/// the results in input order. Each result is written only into its
/// task-indexed slot, so the returned vector is bit-identical at any thread
/// count (the pool's determinism contract, DESIGN.md §5d). Issued from
/// inside a pool task, the fan-out degenerates to an inline loop.
template <typename Fn>
auto run_suite_tasks(std::size_t n, Fn&& fn) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out(n);
  ThreadPool::global().parallel_for(n,
                                    [&](std::size_t task, std::size_t) { out[task] = fn(task); });
  return out;
}

/// Per-circuit parallel versions of the two flows: one task per suite entry,
/// reports returned in suite order. These back the bench/table5-table8
/// binaries' --threads=N flag.
std::vector<GenerateCompactReport> run_suite_generate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config = {},
    const std::string& bench_dir = {});
std::vector<TranslateCompactReport> run_suite_translate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config = {},
    const std::string& bench_dir = {});

}  // namespace uniscan
