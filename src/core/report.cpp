#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/sequential_sim.hpp"

namespace uniscan {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  // First column left-aligned, the rest right-aligned.
  const auto pad = [&](const std::string& s, std::size_t w, bool left) {
    std::string out_s;
    if (left) {
      out_s = s + std::string(w - s.size(), ' ');
    } else {
      out_s = std::string(w - s.size(), ' ') + s;
    }
    return out_s;
  };

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << pad(row[c], width[c], c == 0);
    }
    out << "\n";
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

StreamTable::StreamTable(std::ostream& out, std::vector<std::string> header,
                         std::vector<std::size_t> min_widths)
    : out_(out), width_(header.size()) {
  // Default minimum keeps typical numeric cells aligned without knowing the
  // data in advance; the name column gets extra room.
  for (std::size_t c = 0; c < header.size(); ++c) {
    width_[c] = std::max(header[c].size(), c < min_widths.size() ? min_widths[c]
                                           : c == 0             ? std::size_t{10}
                                                                : std::size_t{8});
  }
  std::size_t total = 0;
  for (std::size_t c = 0; c < width_.size(); ++c) {
    if (c) out_ << "  ";
    if (c == 0) out_ << header[c] << std::string(width_[c] - header[c].size(), ' ');
    else out_ << std::string(width_[c] - header[c].size(), ' ') << header[c];
    total += width_[c] + (c ? 2 : 0);
  }
  out_ << "\n" << std::string(total, '-') << "\n" << std::flush;
}

void StreamTable::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_.size())
    throw std::invalid_argument("StreamTable::add_row: cell count mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out_ << "  ";
    const std::size_t pad = cells[c].size() < width_[c] ? width_[c] - cells[c].size() : 0;
    if (c == 0) out_ << cells[c] << std::string(pad, ' ');
    else out_ << std::string(pad, ' ') << cells[c];
  }
  out_ << "\n" << std::flush;
}

std::string format_pct(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

std::string format_sat_summary(SatMode mode, const SatSummary& s) {
  std::ostringstream os;
  os << "sat[" << sat_mode_name(mode) << "]: attempts=" << s.attempts
     << " detected=" << s.detected << " proved_redundant=" << s.proved_redundant
     << " aborted=" << s.aborted << " cross_checks=" << s.cross_checks
     << " mismatches=" << s.mismatches;
  return os.str();
}

std::string format_sequence_table(const ScanCircuit& sc, const TestSequence& seq) {
  const std::size_t npi = sc.netlist.num_inputs();
  const std::size_t sel = sc.scan_sel_index();
  const std::size_t inp = sc.chain().scan_inp_index;

  std::vector<std::string> header{"t"};
  for (std::size_t i = 0; i < npi; ++i) {
    if (i == sel || i == inp) continue;
    header.push_back(sc.netlist.gate(sc.netlist.inputs()[i]).name);
  }
  header.push_back("scan_sel");
  header.push_back("scan_inp");

  TextTable table(std::move(header));
  for (std::size_t t = 0; t < seq.length(); ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (std::size_t i = 0; i < npi; ++i) {
      if (i == sel || i == inp) continue;
      row.push_back(std::string(1, to_char(seq.at(t, i))));
    }
    row.push_back(std::string(1, to_char(seq.at(t, sel))));
    row.push_back(std::string(1, to_char(seq.at(t, inp))));
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string format_tester_program(const ScanCircuit& sc, const TestSequence& seq) {
  const Netlist& nl = sc.netlist;
  const SequentialSimulator sim(nl);
  const SimTrace trace = sim.simulate(seq, sim.initial_state());

  std::ostringstream os;
  os << "# uniscan tester program for " << nl.name() << "\n";
  os << "# cycle | inputs (";
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    os << (i ? " " : "") << nl.gate(nl.inputs()[i]).name;
  os << ") | expected outputs (";
  for (std::size_t o = 0; o < nl.num_outputs(); ++o)
    os << (o ? " " : "") << nl.gate(nl.outputs()[o]).name;
  os << ")\n";

  std::size_t scan_run = 0;
  for (std::size_t t = 0; t < seq.length(); ++t) {
    const bool shifting = seq.at(t, sc.scan_sel_index()) == V3::One;
    if (shifting && scan_run == 0) {
      std::size_t len = 0;
      for (std::size_t u = t; u < seq.length() && seq.at(u, sc.scan_sel_index()) == V3::One; ++u)
        ++len;
      os << "# scan operation: " << len << " shift(s)"
         << (len < sc.max_chain_length() ? " (limited)" : " (complete)") << "\n";
      scan_run = len;
    }
    if (!shifting) scan_run = 0;
    else if (scan_run) --scan_run;

    os << t << " | ";
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) os << to_char(seq.at(t, i));
    os << " | ";
    for (V3 v : trace.po[t]) os << to_char(v);
    os << "\n";
  }
  return os.str();
}

}  // namespace uniscan
