// Plain-text table rendering for the experiment binaries; mirrors the look
// of the paper's tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "atpg/verdict.hpp"
#include "core/pipeline.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Add a data row (must match the header width).
  void add_row(std::vector<std::string> cells);

  /// Render with right-aligned numeric cells and a separator under the header.
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Column-aligned table that prints each row the moment it is added, for
/// suite runs that stream results as circuits complete. Column widths are
/// fixed up front (header width vs. a per-column minimum), so rows render
/// identically whether the run finishes or is cut short by --time-budget;
/// an oversized cell widens its own row rather than re-flowing the table.
/// The header + rule are printed by the constructor; every add_row flushes.
class StreamTable {
 public:
  StreamTable(std::ostream& out, std::vector<std::string> header,
              std::vector<std::size_t> min_widths = {});

  /// Print a data row immediately (must match the header width).
  void add_row(const std::vector<std::string>& cells);

 private:
  std::ostream& out_;
  std::vector<std::size_t> width_;
};

/// Format a double like the paper's coverage column ("99.63").
std::string format_pct(double v);

/// One-line rendering of what a SAT second-chance pass contributed, printed
/// by the table binaries under their suite totals when --sat is active:
///   "sat[second-chance]: attempts=5 detected=1 proved_redundant=2 ..."
std::string format_sat_summary(SatMode mode, const SatSummary& s);

/// Render a unified test sequence like the paper's Tables 1/3/4: one row per
/// time unit with original inputs, then scan_sel, then scan_inp.
std::string format_sequence_table(const ScanCircuit& sc, const TestSequence& seq);

/// Emit an annotated per-cycle tester program: inputs, expected primary
/// output values (from good-machine simulation; 'x' = don't compare), and
/// scan-operation annotations. This is the artifact a test engineer would
/// load; the expected outputs make every cycle a measurement point, which is
/// what gives the unified sequences their observation power.
std::string format_tester_program(const ScanCircuit& sc, const TestSequence& seq);

}  // namespace uniscan
