// Plain-text table rendering for the experiment binaries; mirrors the look
// of the paper's tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "scan/scan_insertion.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Add a data row (must match the header width).
  void add_row(std::vector<std::string> cells);

  /// Render with right-aligned numeric cells and a separator under the header.
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double like the paper's coverage column ("99.63").
std::string format_pct(double v);

/// Render a unified test sequence like the paper's Tables 1/3/4: one row per
/// time unit with original inputs, then scan_sel, then scan_inp.
std::string format_sequence_table(const ScanCircuit& sc, const TestSequence& seq);

/// Emit an annotated per-cycle tester program: inputs, expected primary
/// output values (from good-machine simulation; 'x' = don't compare), and
/// scan-operation annotations. This is the artifact a test engineer would
/// load; the expected outputs make every cycle a measurement point, which is
/// what gives the unified sequences their observation power.
std::string format_tester_program(const ScanCircuit& sc, const TestSequence& seq);

}  // namespace uniscan
