// Process exit-code taxonomy, shared by uniscan_cli and every table binary
// (asserted in cli_test.cpp). One vocabulary so scripts and CI can branch on
// WHAT went wrong, not which binary said it:
//
//   0  success (including graceful deadline degradation — partial but
//      verified results are success, per DESIGN.md §5f)
//   1  runtime error (bad input file, malformed circuit, ...)
//   2  usage error (unknown flag/command)
//   3  internal error (unexpected exception escaping main)
//   4  suite ran but some rows failed (isolated per-circuit failures)
//   5  service overload: at least one job was shed by admission control
//      (explicit reject under backpressure — distinct from 4 because no
//      admitted work failed; the caller should retry later, not debug)
#pragma once

namespace uniscan {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitInternal = 3;
inline constexpr int kExitHadFailures = 4;
inline constexpr int kExitOverload = 5;

}  // namespace uniscan
