#include "core/pipeline.hpp"

#include <chrono>

#include "fault/fault_list.hpp"
#include "sim/fault_sim.hpp"

namespace uniscan {

SequenceStats sequence_stats(const ScanCircuit& sc, const TestSequence& seq) {
  SequenceStats s;
  s.total = seq.length();
  s.scan = seq.count_ones(sc.scan_sel_index());
  return s;
}

namespace {

/// Derive the effective cancel token of one circuit's flow: the config's
/// parent token, narrowed by the whole-run budget (when not already anchored
/// by a suite runner) and the per-circuit budget. Inert when neither budget
/// is set and no parent was supplied — zero-cost in the common case.
CancelToken derive_circuit_token(const PipelineConfig& config) {
  CancelToken tok = config.cancel;
  if (config.time_budget_secs > 0) tok = tok.child(Deadline::after(config.time_budget_secs));
  if (config.per_circuit_budget_secs > 0)
    tok = tok.child(Deadline::after(config.per_circuit_budget_secs));
  return tok;
}

/// run_stage plus a StageStat row: wall time and the counter deltas the
/// stage contributed, appended to `stages` on success. A throwing stage
/// records nothing — its circuit's report is discarded anyway (suite
/// isolation) and the per-stage counter test relies on failed stages
/// contributing no rows.
template <typename Fn>
auto timed_stage(std::vector<obs::StageStat>& stages, const std::string& circuit,
                 const char* stage, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  using R = decltype(fn());
  const Clock::time_point t0 = Clock::now();
  const obs::CounterScope scope;
  const auto record = [&] {
    obs::StageStat st;
    st.name = stage;
    st.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    st.counters = scope.deltas();
    stages.push_back(std::move(st));
  };
  if constexpr (std::is_void_v<R>) {
    run_stage(circuit, stage, std::forward<Fn>(fn));
    record();
  } else {
    auto result = run_stage(circuit, stage, std::forward<Fn>(fn));
    record();
    return result;
  }
}

/// Shared Tables-5/6 flow body from the atpg stage onward: both overloads of
/// run_generate_and_compact funnel here, so a run from cached artifacts is
/// the same code path — and therefore bit-identical — to a cold run.
void generate_and_compact_tail(GenerateCompactReport& report, const ScanCircuit& sc,
                               const FaultList& faults, const PipelineConfig& config,
                               const CancelToken& cancel) {
  AtpgOptions atpg_opt = config.atpg;
  atpg_opt.cancel = cancel;
  report.atpg = timed_stage(report.stages, report.circuit, "atpg",
                            [&] { return generate_tests(sc, faults, atpg_opt); });
  report.raw = sequence_stats(sc, report.atpg.sequence);

  RestorationOptions rest_opt = config.restoration;
  rest_opt.cancel = cancel;
  report.restoration = timed_stage(report.stages, report.circuit, "restoration", [&] {
    return restoration_compact(sc.netlist, report.atpg.sequence, faults.faults(), rest_opt);
  });
  report.restored = sequence_stats(sc, report.restoration.sequence);

  OmissionOptions om_opt = config.omission;
  om_opt.cancel = cancel;
  report.omission = timed_stage(report.stages, report.circuit, "omission", [&] {
    return omission_compact(sc.netlist, report.restoration.sequence, faults.faults(), om_opt);
  });
  report.omitted = sequence_stats(sc, report.omission.sequence);

  // ext det: final compacted sequence vs. the generated sequence.
  timed_stage(report.stages, report.circuit, "verify", [&] {
    FaultSimulator sim(sc.netlist);
    const auto final_det = sim.run(report.omission.sequence, faults.faults());
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (final_det[i].detected && !report.atpg.detection[i].detected) ++report.extra_detected;
  });

  if (config.run_baseline) {
    BaselineOptions base_opt = config.baseline;
    base_opt.cancel = cancel;
    report.baseline = timed_stage(report.stages, report.circuit, "baseline",
                                  [&] { return generate_baseline_tests(sc, faults, base_opt); });
    report.baseline_run = true;
  }
}

/// Shared Table-7 flow body from the baseline stage onward.
void translate_and_compact_tail(TranslateCompactReport& report, const ScanCircuit& sc,
                                const FaultList& faults, const PipelineConfig& config,
                                const CancelToken& cancel) {
  BaselineOptions base_opt = config.baseline;
  base_opt.cancel = cancel;
  report.baseline = timed_stage(report.stages, report.circuit, "baseline",
                                [&] { return generate_baseline_tests(sc, faults, base_opt); });
  // The baseline's bookkeeping sequence IS the Section-3 translation of its
  // test set (fully specified), so it is the compaction input.
  const TestSequence& translated = report.baseline.translated;
  timed_stage(report.stages, report.circuit, "translate",
              [&] { report.translated = sequence_stats(sc, translated); });

  RestorationOptions rest_opt = config.restoration;
  rest_opt.cancel = cancel;
  report.restoration = timed_stage(report.stages, report.circuit, "restoration", [&] {
    return restoration_compact(sc.netlist, translated, faults.faults(), rest_opt);
  });
  report.restored = sequence_stats(sc, report.restoration.sequence);

  OmissionOptions om_opt = config.omission;
  om_opt.cancel = cancel;
  report.omission = timed_stage(report.stages, report.circuit, "omission", [&] {
    return omission_compact(sc.netlist, report.restoration.sequence, faults.faults(), om_opt);
  });
  report.omitted = sequence_stats(sc, report.omission.sequence);
}

}  // namespace

PipelineConfig anchor_suite_budget(const PipelineConfig& config) {
  PipelineConfig cfg = config;
  if (cfg.time_budget_secs > 0) {
    cfg.cancel = cfg.cancel.child(Deadline::after(cfg.time_budget_secs));
    cfg.time_budget_secs = 0;
  }
  return cfg;
}

GenerateCompactReport run_generate_and_compact(const Netlist& c, const PipelineConfig& config) {
  GenerateCompactReport report;
  report.circuit = c.name();
  const obs::TraceSpan span("circuit", report.circuit);
  const CancelToken cancel = derive_circuit_token(config);

  const ScanCircuit sc =
      timed_stage(report.stages, report.circuit, "scan", [&] { return insert_scan(c); });
  report.num_inputs = sc.netlist.num_inputs();
  report.num_dffs = sc.netlist.num_dffs();

  const FaultList faults = timed_stage(report.stages, report.circuit, "faults",
                                       [&] { return FaultList::collapsed(sc.netlist); });

  generate_and_compact_tail(report, sc, faults, config, cancel);
  return report;
}

CircuitArtifacts build_circuit_artifacts(const Netlist& c, std::size_t num_chains) {
  CircuitArtifacts a;
  a.circuit = c.name();
  auto sc = std::make_shared<ScanCircuit>(insert_scan(c, num_chains));
  auto faults = std::make_shared<FaultList>(FaultList::collapsed(sc->netlist));
  sc->netlist.compiled_shared();  // warm the shared compile once, up front
  a.scan = std::move(sc);
  a.faults = std::move(faults);
  return a;
}

GenerateCompactReport run_generate_and_compact(const CircuitArtifacts& a,
                                               const PipelineConfig& config) {
  GenerateCompactReport report;
  report.circuit = a.circuit;
  const obs::TraceSpan span("circuit", report.circuit);
  const CancelToken cancel = derive_circuit_token(config);

  report.num_inputs = a.scan->netlist.num_inputs();
  report.num_dffs = a.scan->netlist.num_dffs();
  generate_and_compact_tail(report, *a.scan, *a.faults, config, cancel);
  return report;
}

TranslateCompactReport run_translate_and_compact(const Netlist& c, const PipelineConfig& config) {
  TranslateCompactReport report;
  report.circuit = c.name();
  const obs::TraceSpan span("circuit", report.circuit);
  const CancelToken cancel = derive_circuit_token(config);

  const ScanCircuit sc =
      timed_stage(report.stages, report.circuit, "scan", [&] { return insert_scan(c); });
  const FaultList faults = timed_stage(report.stages, report.circuit, "faults",
                                       [&] { return FaultList::collapsed(sc.netlist); });

  translate_and_compact_tail(report, sc, faults, config, cancel);
  return report;
}

TranslateCompactReport run_translate_and_compact(const CircuitArtifacts& a,
                                                 const PipelineConfig& config) {
  TranslateCompactReport report;
  report.circuit = a.circuit;
  const obs::TraceSpan span("circuit", report.circuit);
  const CancelToken cancel = derive_circuit_token(config);

  translate_and_compact_tail(report, *a.scan, *a.faults, config, cancel);
  return report;
}

std::vector<GenerateCompactReport> run_suite_generate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config,
    const std::string& bench_dir) {
  const PipelineConfig cfg = anchor_suite_budget(config);
  return run_suite_tasks(suite.size(), [&](std::size_t i) {
    return run_generate_and_compact(load_circuit(suite[i], bench_dir), cfg);
  });
}

std::vector<TranslateCompactReport> run_suite_translate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config,
    const std::string& bench_dir) {
  const PipelineConfig cfg = anchor_suite_budget(config);
  return run_suite_tasks(suite.size(), [&](std::size_t i) {
    return run_translate_and_compact(load_circuit(suite[i], bench_dir), cfg);
  });
}

std::vector<TaskOutcome<GenerateCompactReport>> run_suite_generate_and_compact_isolated(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config,
    const std::string& bench_dir) {
  const PipelineConfig cfg = anchor_suite_budget(config);
  return run_suite_tasks_isolated(
      suite,
      [&](std::size_t i) {
        const Netlist c = run_stage(suite[i].name, "load",
                                    [&] { return load_circuit(suite[i], bench_dir); });
        return run_generate_and_compact(c, cfg);
      },
      cfg.fail_fast);
}

std::vector<TaskOutcome<TranslateCompactReport>> run_suite_translate_and_compact_isolated(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config,
    const std::string& bench_dir) {
  const PipelineConfig cfg = anchor_suite_budget(config);
  return run_suite_tasks_isolated(
      suite,
      [&](std::size_t i) {
        const Netlist c = run_stage(suite[i].name, "load",
                                    [&] { return load_circuit(suite[i], bench_dir); });
        return run_translate_and_compact(c, cfg);
      },
      cfg.fail_fast);
}

}  // namespace uniscan
