#include "core/pipeline.hpp"

#include "fault/fault_list.hpp"
#include "sim/fault_sim.hpp"

namespace uniscan {

SequenceStats sequence_stats(const ScanCircuit& sc, const TestSequence& seq) {
  SequenceStats s;
  s.total = seq.length();
  s.scan = seq.count_ones(sc.scan_sel_index());
  return s;
}

GenerateCompactReport run_generate_and_compact(const Netlist& c, const PipelineConfig& config) {
  GenerateCompactReport report;
  report.circuit = c.name();

  const ScanCircuit sc = insert_scan(c);
  report.num_inputs = sc.netlist.num_inputs();
  report.num_dffs = sc.netlist.num_dffs();

  const FaultList faults = FaultList::collapsed(sc.netlist);
  report.atpg = generate_tests(sc, faults, config.atpg);
  report.raw = sequence_stats(sc, report.atpg.sequence);

  report.restoration =
      restoration_compact(sc.netlist, report.atpg.sequence, faults.faults(), config.restoration);
  report.restored = sequence_stats(sc, report.restoration.sequence);

  report.omission =
      omission_compact(sc.netlist, report.restoration.sequence, faults.faults(), config.omission);
  report.omitted = sequence_stats(sc, report.omission.sequence);

  // ext det: final compacted sequence vs. the generated sequence.
  FaultSimulator sim(sc.netlist);
  const auto final_det = sim.run(report.omission.sequence, faults.faults());
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (final_det[i].detected && !report.atpg.detection[i].detected) ++report.extra_detected;

  if (config.run_baseline) {
    report.baseline = generate_baseline_tests(sc, faults, config.baseline);
    report.baseline_run = true;
  }
  return report;
}

TranslateCompactReport run_translate_and_compact(const Netlist& c, const PipelineConfig& config) {
  TranslateCompactReport report;
  report.circuit = c.name();

  const ScanCircuit sc = insert_scan(c);
  const FaultList faults = FaultList::collapsed(sc.netlist);

  report.baseline = generate_baseline_tests(sc, faults, config.baseline);
  // The baseline's bookkeeping sequence IS the Section-3 translation of its
  // test set (fully specified), so it is the compaction input.
  const TestSequence& translated = report.baseline.translated;
  report.translated = sequence_stats(sc, translated);

  report.restoration =
      restoration_compact(sc.netlist, translated, faults.faults(), config.restoration);
  report.restored = sequence_stats(sc, report.restoration.sequence);

  report.omission =
      omission_compact(sc.netlist, report.restoration.sequence, faults.faults(), config.omission);
  report.omitted = sequence_stats(sc, report.omission.sequence);
  return report;
}

std::vector<GenerateCompactReport> run_suite_generate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config,
    const std::string& bench_dir) {
  return run_suite_tasks(suite.size(), [&](std::size_t i) {
    return run_generate_and_compact(load_circuit(suite[i], bench_dir), config);
  });
}

std::vector<TranslateCompactReport> run_suite_translate_and_compact(
    const std::vector<SuiteEntry>& suite, const PipelineConfig& config,
    const std::string& bench_dir) {
  return run_suite_tasks(suite.size(), [&](std::size_t i) {
    return run_translate_and_compact(load_circuit(suite[i], bench_dir), config);
  });
}

}  // namespace uniscan
