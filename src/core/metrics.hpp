// Sequence quality metrics: test application cost and tester-power proxies.
//
// Besides cycle count (the paper's metric), test engineers care about how
// scan time is spent and how much switching the sequence causes. The
// scan-operation histogramming quantifies the paper's limited-scan claim;
// the transition counts give the standard shift/capture power proxies
// (weighted switching activity on inputs and state).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "scan/scan_insertion.hpp"
#include "sim/sequence.hpp"

namespace uniscan {

struct SequenceMetrics {
  std::size_t length = 0;              // clock cycles
  std::size_t scan_vectors = 0;        // vectors with scan_sel = 1
  std::size_t scan_operations = 0;     // maximal runs of scan_sel = 1
  std::size_t complete_scan_ops = 0;   // runs of exactly the chain length or more
  std::size_t longest_scan_op = 0;
  std::map<std::size_t, std::size_t> scan_op_histogram;  // run length -> count

  std::size_t input_transitions = 0;   // PI value changes between consecutive cycles
  std::size_t state_transitions = 0;   // FF toggles (good machine, known->known changes)

  double scan_fraction() const {
    return length == 0 ? 0.0 : static_cast<double>(scan_vectors) / static_cast<double>(length);
  }
  double limited_scan_fraction() const {
    return scan_operations == 0
               ? 0.0
               : 1.0 - static_cast<double>(complete_scan_ops) /
                           static_cast<double>(scan_operations);
  }
};

/// Compute metrics for a (fully specified or partial) sequence; X entries
/// never count as transitions.
SequenceMetrics compute_metrics(const ScanCircuit& sc, const TestSequence& seq);

/// Multi-line human-readable rendering.
std::string format_metrics(const SequenceMetrics& m);

}  // namespace uniscan
