#include "workloads/suite.hpp"

#include <filesystem>

#include "netlist/bench_io.hpp"
#include "workloads/circuits.hpp"
#include "workloads/synth_gen.hpp"

namespace uniscan {

const std::vector<SuiteEntry>& paper_suite() {
  // PI/FF profiles from Table 5 (inp includes scan_sel and scan_inp, so the
  // original PI count is inp - 2). Gate budgets approximate the real
  // circuits' combinational sizes. Fast-suite membership keeps the default
  // experiment runtime moderate; pass --full to the table binaries for the
  // rest.
  static const std::vector<SuiteEntry> suite = {
      {"s27", 4, 3, 10, true},
      {"s208", 11, 8, 104, true},
      {"s298", 3, 14, 119, true},
      {"s344", 9, 15, 160, true},
      {"s382", 3, 21, 158, true},
      {"s386", 7, 6, 159, true},
      {"s400", 3, 21, 162, true},
      {"s420", 19, 16, 218, true},
      {"s444", 3, 21, 181, true},
      {"s510", 19, 6, 211, true},
      {"s526", 3, 21, 193, true},
      {"s641", 35, 19, 379, false},
      {"s820", 18, 5, 289, false},
      {"s953", 16, 29, 395, false},
      {"s1196", 14, 18, 529, false},
      {"s1423", 17, 74, 657, false},
      {"s1488", 8, 6, 653, false},
      {"s5378", 35, 179, 2779, false},
      {"s35932", 35, 1728, 16065, false},
      {"b01", 3, 5, 45, true},
      {"b02", 2, 4, 25, true},
      {"b03", 5, 30, 150, true},
      {"b04", 12, 66, 600, false},
      {"b06", 3, 9, 50, true},
      {"b09", 2, 28, 160, true},
      {"b10", 12, 17, 180, true},
      {"b11", 8, 30, 500, false},
  };
  return suite;
}

std::vector<SuiteEntry> fast_suite() {
  std::vector<SuiteEntry> out;
  for (const auto& e : paper_suite())
    if (e.in_fast_suite) out.push_back(e);
  return out;
}

std::optional<SuiteEntry> find_suite_entry(const std::string& name) {
  for (const auto& e : paper_suite())
    if (e.name == name) return e;
  return std::nullopt;
}

Netlist load_circuit(const SuiteEntry& entry, const std::string& bench_dir) {
  if (entry.name == "s27") return make_s27();
  if (!bench_dir.empty()) {
    const auto path = std::filesystem::path(bench_dir) / (entry.name + ".bench");
    if (std::filesystem::exists(path)) return read_bench_file(path.string());
  }
  SynthSpec spec;
  spec.name = entry.name;
  spec.num_inputs = entry.num_inputs;
  spec.num_dffs = entry.num_dffs;
  spec.num_gates = entry.num_gates;
  // Stable per-circuit seed derived from the name.
  spec.seed = 0xc0ffee;
  for (char c : entry.name) spec.seed = spec.seed * 131 + static_cast<unsigned char>(c);
  return generate_synthetic(spec);
}

}  // namespace uniscan
