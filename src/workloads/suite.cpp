#include "workloads/suite.hpp"

#include <filesystem>
#include <stdexcept>

#include "corpus/corpus.hpp"
#include "netlist/bench_io.hpp"
#include "util/sha256.hpp"
#include "workloads/circuits.hpp"
#include "workloads/synth_gen.hpp"

namespace uniscan {

const std::vector<SuiteEntry>& paper_suite() {
  // PI/FF profiles from Table 5 (inp includes scan_sel and scan_inp, so the
  // original PI count is inp - 2). Gate budgets approximate the real
  // circuits' combinational sizes. Fast-suite membership keeps the default
  // experiment runtime moderate; pass --full to the table binaries for the
  // rest.
  const auto row = [](const char* name, std::size_t inputs, std::size_t dffs, std::size_t gates,
                      bool fast) {
    SuiteEntry e;
    e.name = name;
    e.num_inputs = inputs;
    e.num_dffs = dffs;
    e.num_gates = gates;
    e.in_fast_suite = fast;
    return e;
  };
  static const std::vector<SuiteEntry> suite = {
      row("s27", 4, 3, 10, true),
      row("s208", 11, 8, 104, true),
      row("s298", 3, 14, 119, true),
      row("s344", 9, 15, 160, true),
      row("s382", 3, 21, 158, true),
      row("s386", 7, 6, 159, true),
      row("s400", 3, 21, 162, true),
      row("s420", 19, 16, 218, true),
      row("s444", 3, 21, 181, true),
      row("s510", 19, 6, 211, true),
      row("s526", 3, 21, 193, true),
      row("s641", 35, 19, 379, false),
      row("s820", 18, 5, 289, false),
      row("s953", 16, 29, 395, false),
      row("s1196", 14, 18, 529, false),
      row("s1423", 17, 74, 657, false),
      row("s1488", 8, 6, 653, false),
      row("s5378", 35, 179, 2779, false),
      row("s35932", 35, 1728, 16065, false),
      row("b01", 3, 5, 45, true),
      row("b02", 2, 4, 25, true),
      row("b03", 5, 30, 150, true),
      row("b04", 12, 66, 600, false),
      row("b06", 3, 9, 50, true),
      row("b09", 2, 28, 160, true),
      row("b10", 12, 17, 180, true),
      row("b11", 8, 30, 500, false),
  };
  return suite;
}

std::vector<SuiteEntry> fast_suite() {
  std::vector<SuiteEntry> out;
  for (const auto& e : paper_suite())
    if (e.in_fast_suite) out.push_back(e);
  return out;
}

std::optional<SuiteEntry> find_suite_entry(const std::string& name) {
  for (const auto& e : paper_suite())
    if (e.name == name) return e;
  // Names not in the paper tables resolve from the corpus registry, so
  // --circuit/--circuits reach every corpus row without per-binary wiring.
  if (const CorpusEntry* ce = CorpusRegistry::global().find(name)) {
    auto rows = CorpusRegistry::global().suite_entries(ce->tier);
    for (auto& e : rows)
      if (e.name == name) return e;
  }
  return std::nullopt;
}

Netlist load_circuit(const SuiteEntry& entry, const std::string& bench_dir) {
  if (!entry.bench_path.empty() || entry.from_corpus) {
    const bool present =
        !entry.bench_path.empty() && std::filesystem::exists(entry.bench_path);
    if (present) {
      if (!entry.expected_sha256.empty()) {
        const std::string got = sha256_file_hex(entry.bench_path);
        if (got != entry.expected_sha256)
          throw std::runtime_error("corpus hash mismatch for " + entry.name + ": " +
                                   entry.bench_path + " has sha256 " + got + ", manifest pins " +
                                   entry.expected_sha256 +
                                   " (re-fetch or re-pin via tools/fetch_corpus)");
      }
      return read_bench_file(entry.bench_path);
    }
    if (entry.from_corpus) {
      const CorpusRegistry& reg = CorpusRegistry::global();
      if (const CorpusEntry* ce = reg.find(entry.name)) return reg.load(*ce);
    }
    throw std::runtime_error("corpus circuit " + entry.name + " missing: " + entry.bench_path +
                             " (run tools/fetch_corpus)");
  }
  if (entry.name == "s27") return make_s27();
  if (!bench_dir.empty()) {
    const auto path = std::filesystem::path(bench_dir) / (entry.name + ".bench");
    if (std::filesystem::exists(path)) return read_bench_file(path.string());
  }
  SynthSpec spec;
  spec.name = entry.name;
  spec.num_inputs = entry.num_inputs;
  spec.num_dffs = entry.num_dffs;
  spec.num_gates = entry.num_gates;
  // Stable per-circuit seed derived from the name.
  spec.seed = 0xc0ffee;
  for (char c : entry.name) spec.seed = spec.seed * 131 + static_cast<unsigned char>(c);
  return generate_synthetic(spec);
}

}  // namespace uniscan
