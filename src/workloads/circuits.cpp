#include "workloads/circuits.hpp"

#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"

namespace uniscan {

namespace {
constexpr std::string_view kS27Bench = R"(# ISCAS-89 benchmark s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";
}  // namespace

std::string_view s27_bench_text() { return kS27Bench; }

Netlist make_s27() { return read_bench_string(kS27Bench, "s27"); }

Netlist make_toy_pipeline() {
  NetlistBuilder b("toy_pipeline");
  const GateId a = b.input("a");
  const GateId en = b.input("en");
  const GateId f0 = b.dff("f0");
  const GateId f1 = b.dff("f1");
  const GateId x = b.xor_("x", {a, f1});
  const GateId g = b.and_("g", {x, en});
  b.connect_dff(f0, g);
  b.connect_dff(f1, f0);
  const GateId out = b.or_("out", {f1, g});
  b.output(out);
  return b.build();
}

}  // namespace uniscan
