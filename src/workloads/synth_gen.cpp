#include "workloads/synth_gen.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace uniscan {

namespace {

/// Working representation while the circuit is being shaped: gate i reads
/// from `fanins[i]`, where ids < num_leaves refer to PIs/FF outputs and ids
/// >= num_leaves refer to earlier gates.
struct Draft {
  std::size_t num_leaves = 0;  // PIs + FFs
  std::vector<GateType> types;
  std::vector<std::vector<std::size_t>> fanins;
};

std::uint64_t eval_draft_gate(GateType t, const std::vector<std::uint64_t>& in) {
  std::uint64_t acc = in[0];
  switch (t) {
    case GateType::Buf: return acc;
    case GateType::Not: return ~acc;
    case GateType::And:
    case GateType::Nand:
      for (std::size_t i = 1; i < in.size(); ++i) acc &= in[i];
      return t == GateType::Nand ? ~acc : acc;
    case GateType::Or:
    case GateType::Nor:
      for (std::size_t i = 1; i < in.size(); ++i) acc |= in[i];
      return t == GateType::Nor ? ~acc : acc;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t i = 1; i < in.size(); ++i) acc ^= in[i];
      return t == GateType::Xnor ? ~acc : acc;
    default: return acc;
  }
}

/// 64-way random-pattern toggle profile. Leaves (PIs and FF outputs) get
/// fresh random words each round — the full controllability a scan chain
/// provides. Returns per-gate (saw0, saw1) flags.
void toggle_profile(const Draft& d, Rng& rng, int rounds, std::vector<std::uint8_t>& saw0,
                    std::vector<std::uint8_t>& saw1) {
  const std::size_t n = d.types.size();
  saw0.assign(n, 0);
  saw1.assign(n, 0);
  std::vector<std::uint64_t> values(d.num_leaves + n);
  std::vector<std::uint64_t> in;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < d.num_leaves; ++i) values[i] = rng.next();
    for (std::size_t g = 0; g < n; ++g) {
      in.clear();
      for (std::size_t f : d.fanins[g]) in.push_back(values[f]);
      const std::uint64_t v = eval_draft_gate(d.types[g], in);
      values[d.num_leaves + g] = v;
      if (v != ~0ULL) saw0[g] = 1;
      if (v != 0) saw1[g] = 1;
    }
  }
}

/// Rewrite gates that never toggled: parity functions of independent signals
/// are essentially never constant, so stuck gates become XOR/XNOR (or NOT
/// for single-input ones) and get a fresh pin-0 source.
void repair_constants(Draft& d, Rng& rng) {
  std::vector<std::uint8_t> saw0, saw1;
  for (int round = 0; round < 6; ++round) {
    toggle_profile(d, rng, 8, saw0, saw1);
    bool any = false;
    for (std::size_t g = 0; g < d.types.size(); ++g) {
      if (saw0[g] && saw1[g]) continue;
      any = true;
      if (d.fanins[g].size() == 1) {
        d.types[g] = GateType::Buf;
        // Re-source from a random earlier signal.
        d.fanins[g][0] = rng.next_below(d.num_leaves + g);
      } else {
        d.types[g] = rng.next_bool() ? GateType::Xor : GateType::Xnor;
        d.fanins[g][0] = rng.next_below(d.num_leaves + g);
      }
    }
    if (!any) break;
  }
}

GateType pick_type(Rng& rng) {
  // Weighted toward the NAND/NOR/AND/OR mix typical of the ISCAS suites.
  const std::uint64_t r = rng.next_below(100);
  if (r < 22) return GateType::Nand;
  if (r < 42) return GateType::Nor;
  if (r < 58) return GateType::And;
  if (r < 74) return GateType::Or;
  if (r < 86) return GateType::Not;
  if (r < 94) return GateType::Xor;
  return GateType::Buf;
}

std::size_t pick_arity(GateType t, Rng& rng) {
  if (t == GateType::Not || t == GateType::Buf) return 1;
  if (t == GateType::Xor) return 2;
  // 2..4, biased to 2.
  const std::uint64_t r = rng.next_below(10);
  if (r < 6) return 2;
  if (r < 9) return 3;
  return 4;
}

}  // namespace

Netlist generate_synthetic(const SynthSpec& spec) {
  if (spec.num_inputs == 0 || spec.num_dffs == 0)
    throw std::invalid_argument("generate_synthetic: need at least one PI and one DFF");
  const std::size_t min_gates = spec.num_inputs + 2 * spec.num_dffs + 2;
  const std::size_t num_gates = std::max(spec.num_gates, min_gates);

  Rng rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);

  Draft d;
  d.num_leaves = spec.num_inputs + spec.num_dffs;

  const auto pick_fanin = [&](std::size_t created) -> std::size_t {
    // Bias toward recently created gates (builds depth); with probability
    // ~1/4 reach anywhere (builds reconvergence and keeps PIs/FFs in play).
    const std::size_t limit = d.num_leaves + created;
    if (limit > 8 && rng.next_below(4) != 0) {
      const std::size_t window = std::min<std::size_t>(limit, 24);
      return limit - 1 - rng.next_below(window);
    }
    return rng.next_below(limit);
  };

  for (std::size_t i = 0; i < num_gates; ++i) {
    GateType t = pick_type(rng);
    const std::size_t arity = pick_arity(t, rng);
    std::vector<std::size_t> fanins;

    // Guarantee consumption: the first num_inputs gates each consume a
    // distinct PI; the next num_dffs gates each consume a distinct FF.
    if (i < d.num_leaves) fanins.push_back(i);

    // Reject candidates directly related to an already chosen signal:
    // one-hop reconvergence like AND(x, NOR(x, y)) creates constant nodes
    // and with them untestable faults, which real ISCAS circuits mostly lack.
    const auto related = [&](std::size_t a, std::size_t b) {
      if (a == b) return true;
      if (a >= d.num_leaves)
        for (std::size_t fi : d.fanins[a - d.num_leaves])
          if (fi == b) return true;
      if (b >= d.num_leaves)
        for (std::size_t fi : d.fanins[b - d.num_leaves])
          if (fi == a) return true;
      return false;
    };
    for (int attempts = 0; fanins.size() < arity && attempts < 24; ++attempts) {
      const std::size_t cand = pick_fanin(i);
      bool bad = false;
      for (std::size_t f : fanins) bad |= related(f, cand);
      if (!bad) fanins.push_back(cand);
    }
    if (fanins.empty()) fanins.push_back(rng.next_below(d.num_leaves + i));
    if (fanins.size() == 1 && t != GateType::Not && t != GateType::Buf)
      t = rng.next_bool() ? GateType::Not : GateType::Buf;

    d.types.push_back(t);
    d.fanins.push_back(std::move(fanins));
  }

  // Remove constant nodes (the dominant source of redundant faults).
  repair_constants(d, rng);

  // Materialize the netlist.
  Netlist nl(spec.name);
  std::vector<GateId> ids;  // draft signal id -> netlist gate id
  for (std::size_t i = 0; i < spec.num_inputs; ++i)
    ids.push_back(nl.add_input("I" + std::to_string(i)));
  std::vector<GateId> ffs;
  for (std::size_t i = 0; i < spec.num_dffs; ++i) {
    ffs.push_back(nl.add_dff("F" + std::to_string(i)));
    ids.push_back(ffs.back());
  }
  for (std::size_t g = 0; g < d.types.size(); ++g) {
    std::vector<GateId> fanins;
    for (std::size_t f : d.fanins[g]) fanins.push_back(ids[f]);
    ids.push_back(nl.add_gate(d.types[g], "g" + std::to_string(g), std::move(fanins)));
  }

  // FF D inputs: each FF reads a gate from the last half of the list so
  // state depends on deep logic (feedback through the core).
  const std::size_t first_gate = d.num_leaves;
  for (std::size_t i = 0; i < spec.num_dffs; ++i) {
    const std::size_t lo = d.types.size() / 2;
    const std::size_t pick = lo + rng.next_below(d.types.size() - lo);
    nl.set_dff_input(ffs[i], ids[first_gate + pick]);
  }

  // Primary outputs: every gate with no fanout becomes a PO (keeps the
  // circuit fully observable-by-construction and free of dead logic).
  std::vector<std::uint32_t> fanout_count(nl.num_gates(), 0);
  for (GateId g = 0; g < nl.num_gates(); ++g)
    for (GateId fi : nl.gate(g).fanins) ++fanout_count[fi];
  bool any_po = false;
  for (std::size_t g = 0; g < d.types.size(); ++g) {
    const GateId id = ids[first_gate + g];
    if (fanout_count[id] == 0) {
      nl.add_output(id);
      any_po = true;
    }
  }
  if (!any_po) nl.add_output(ids.back());

  nl.finalize();
  return nl;
}

}  // namespace uniscan
