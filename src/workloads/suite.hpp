// The benchmark suite used by the paper's Tables 5-7.
//
// Each entry mirrors one row of Table 5: the circuit name, its primary
// input count (original inputs, i.e. the paper's `inp` minus the two scan
// lines) and its flip-flop count (`stvr`). s27 resolves to the embedded
// real netlist; every other name resolves to a deterministic synthetic
// circuit with the same PI/FF profile (see DESIGN.md §3). Real .bench files
// placed in a directory can be used instead via load_circuit()'s
// `bench_dir` parameter.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace uniscan {

struct SuiteEntry {
  std::string name;
  std::size_t num_inputs;  // original PIs (paper's inp - 2)
  std::size_t num_dffs;    // paper's stvr
  std::size_t num_gates;   // synthetic gate budget (≈ real circuit size)
  bool in_fast_suite;      // included in the default (fast) experiment runs

  // ---- corpus binding (corpus/corpus.hpp) ---------------------------------
  /// When set, load_circuit() reads this .bench file (taking precedence over
  /// the embedded/`bench_dir`/synthetic resolution below).
  std::string bench_path;
  /// Expected SHA-256 of the file's bytes; non-empty values are verified at
  /// load so a corrupt corpus file fails loudly.
  std::string expected_sha256;
  /// Entry came from the corpus registry: a missing bench_path falls back to
  /// the registry's deterministic in-memory stand-in instead of erroring.
  bool from_corpus = false;
};

/// All circuits appearing in the paper's tables (plus s27).
const std::vector<SuiteEntry>& paper_suite();

/// Entries flagged for the default fast experiment runs.
std::vector<SuiteEntry> fast_suite();

/// Look up a suite entry by name.
std::optional<SuiteEntry> find_suite_entry(const std::string& name);

/// Materialize a suite circuit: the embedded netlist for s27, a real .bench
/// file from `bench_dir` when one named `<name>.bench` exists there, or the
/// deterministic synthetic stand-in otherwise.
Netlist load_circuit(const SuiteEntry& entry, const std::string& bench_dir = {});

}  // namespace uniscan
