// Deterministic synthetic sequential circuit generator.
//
// Stands in for the ISCAS-89 / ITC-99 netlists that are not shipped with
// the repository (DESIGN.md §3). Given a target PI/FF/gate profile and a
// seed, the generator produces a connected synchronous circuit with:
//  * every PI and every FF consumed by the combinational logic,
//  * state feedback (each FF's D is driven by combinational logic),
//  * reconvergent fanout and mixed gate types,
//  * all sink gates promoted to primary outputs.
// The same spec + seed always yields the identical netlist.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace uniscan {

struct SynthSpec {
  std::string name;
  std::size_t num_inputs = 4;
  std::size_t num_dffs = 4;
  std::size_t num_gates = 40;   // combinational gates
  std::uint64_t seed = 1;
};

Netlist generate_synthetic(const SynthSpec& spec);

}  // namespace uniscan
