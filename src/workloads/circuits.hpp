// Embedded benchmark circuits.
//
// s27 (ISCAS-89) is embedded verbatim — it is the circuit the paper's
// Tables 1-4 use. Larger ISCAS-89/ITC-99 circuits are not shipped (see
// DESIGN.md §3); load real .bench files with read_bench_file() or use the
// synthetic suite in suite.hpp.
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace uniscan {

/// The ISCAS-89 s27 benchmark: 4 PIs, 1 PO, 3 DFFs, 10 combinational gates.
Netlist make_s27();

/// Raw .bench text of s27 (for parser tests and documentation).
std::string_view s27_bench_text();

/// A tiny handcrafted pipeline circuit used by unit tests: 2 PIs, 1 PO,
/// 2 DFFs forming a shift-like structure with XOR feedback.
Netlist make_toy_pipeline();

}  // namespace uniscan
