// Transition (gross-delay) fault model — the at-speed metric used by the
// paper's comparison procedure [26] ("Test Compaction for At-Speed Testing
// of Scan Circuits ...").
//
// A slow-to-rise (STR) fault on a line delays every 0->1 transition past the
// capture edge; slow-to-fall (STF) symmetrically. Under the one-cycle
// gross-delay model the faulty line value is
//     STR: and(driven(t), driven(t-1))      STF: or(driven(t), driven(t-1))
// so a fault effect exists exactly at launch cycles, and detection requires
// launching a transition AND propagating the stale value to an observation
// point — which unified sequences provide for free, since consecutive
// vectors are applied at speed (scan shifts included).
//
// Simulation keeps each faulty machine's own driven-value history, so the
// one-cycle gross-delay semantics is modelled exactly (including fault
// effects that feed back into the faulted line's driver cone through the
// state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace uniscan {

struct TransitionFault {
  GateId gate = kNoGate;
  std::int16_t pin = -1;      // kStemPin semantics as for stuck-at faults
  bool slow_to_rise = false;  // false: slow-to-fall

  bool operator==(const TransitionFault&) const = default;
  auto operator<=>(const TransitionFault&) const = default;
};

std::string transition_fault_to_string(const Netlist& nl, const TransitionFault& f);

/// Enumerate transition faults on every stem and every multi-fanout branch
/// (single-fanout branches are equivalent to their stems, as for stuck-at).
/// No gate-rule collapsing: the classical stuck-at equivalences do not carry
/// over to transitions.
std::vector<TransitionFault> enumerate_transition_faults(const Netlist& nl);

}  // namespace uniscan
