#include "fault/fault_list.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "obs/counters.hpp"

namespace uniscan {

namespace {

/// Index space for union-find: each enumerated line has two fault slots
/// (s-a-0, s-a-1) addressed as 2*line + stuck.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

struct Line {
  GateId gate;
  std::int16_t pin;
};

struct Enumeration {
  std::vector<Line> lines;
  // line index of the stem of gate g
  std::vector<std::size_t> stem_of;
  // line index of branch (g, pin), or npos if the branch is folded into its stem
  std::map<std::pair<GateId, std::int16_t>, std::size_t> branch_of;
};

Enumeration enumerate_lines(const Netlist& nl, bool fold_single_fanout_branches) {
  Enumeration e;
  e.stem_of.assign(nl.num_gates(), 0);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    e.stem_of[g] = e.lines.size();
    e.lines.push_back(Line{g, kStemPin});
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    for (std::size_t p = 0; p < gate.fanins.size(); ++p) {
      const GateId driver = gate.fanins[p];
      if (fold_single_fanout_branches && nl.fanout_count(driver) == 1) continue;
      e.branch_of[{g, static_cast<std::int16_t>(p)}] = e.lines.size();
      e.lines.push_back(Line{g, static_cast<std::int16_t>(p)});
    }
  }
  return e;
}

/// Fault slot id for (line, stuck value).
constexpr std::size_t slot(std::size_t line, bool stuck_one) {
  return 2 * line + (stuck_one ? 1 : 0);
}

}  // namespace

FaultList FaultList::uncollapsed(const Netlist& nl) {
  FaultList fl;
  // Enumerate every line, including single-fanout branches.
  const Enumeration e = enumerate_lines(nl, /*fold_single_fanout_branches=*/false);
  for (const Line& line : e.lines) {
    fl.faults_.push_back(Fault{line.gate, line.pin, false});
    fl.faults_.push_back(Fault{line.gate, line.pin, true});
  }
  fl.uncollapsed_count_ = fl.faults_.size();
  return fl;
}

FaultList FaultList::collapsed(const Netlist& nl) {
  const Enumeration e = enumerate_lines(nl, /*fold_single_fanout_branches=*/true);
  const std::size_t num_slots = 2 * e.lines.size();
  UnionFind uf(num_slots);

  // Helper: fault slot of the line feeding pin p of gate g. If the branch
  // was folded (single fanout), that is the driver's stem.
  const auto input_slot = [&](GateId g, std::size_t p, bool stuck_one) {
    const auto it = e.branch_of.find({g, static_cast<std::int16_t>(p)});
    if (it != e.branch_of.end()) return slot(it->second, stuck_one);
    return slot(e.stem_of[nl.gate(g).fanins[p]], stuck_one);
  };

  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const std::size_t n = gate.fanins.size();
    const auto out0 = slot(e.stem_of[g], false);
    const auto out1 = slot(e.stem_of[g], true);
    switch (gate.type) {
      case GateType::Buf:
        uf.unite(input_slot(g, 0, false), out0);
        uf.unite(input_slot(g, 0, true), out1);
        break;
      case GateType::Not:
        uf.unite(input_slot(g, 0, false), out1);
        uf.unite(input_slot(g, 0, true), out0);
        break;
      case GateType::And:
        for (std::size_t p = 0; p < n; ++p) uf.unite(input_slot(g, p, false), out0);
        break;
      case GateType::Nand:
        for (std::size_t p = 0; p < n; ++p) uf.unite(input_slot(g, p, false), out1);
        break;
      case GateType::Or:
        for (std::size_t p = 0; p < n; ++p) uf.unite(input_slot(g, p, true), out1);
        break;
      case GateType::Nor:
        for (std::size_t p = 0; p < n; ++p) uf.unite(input_slot(g, p, true), out0);
        break;
      default:
        break;  // XOR/XNOR/MUX/DFF/INPUT/CONST: no gate-level equivalences
    }
  }

  // One representative per class: the one whose root it is (smallest slot).
  FaultList fl;
  fl.uncollapsed_count_ = 2 * (nl.num_gates() + [&] {
    std::size_t pins = 0;
    for (GateId g = 0; g < nl.num_gates(); ++g) pins += nl.gate(g).fanins.size();
    return pins;
  }());
  for (std::size_t s = 0; s < num_slots; ++s) {
    if (uf.find(s) != s) continue;
    const Line& line = e.lines[s / 2];
    fl.faults_.push_back(Fault{line.gate, line.pin, (s & 1) != 0});
  }
  // Attribute the collapse's work to the stage that ran it: before this
  // counter the `faults` stage reported all-zero rows even though collapsing
  // is the bulk of its time.
  obs::count(obs::Counter::FaultsCollapsed, fl.uncollapsed_count_ - fl.faults_.size());
  return fl;
}

FaultList FaultList::prefix(std::size_t n) const {
  FaultList fl;
  fl.uncollapsed_count_ = uncollapsed_count_;
  fl.faults_.assign(faults_.begin(),
                    faults_.begin() + static_cast<std::ptrdiff_t>(std::min(n, faults_.size())));
  return fl;
}

}  // namespace uniscan
