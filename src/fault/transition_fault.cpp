#include "fault/transition_fault.hpp"

#include "fault/fault.hpp"

namespace uniscan {

std::string transition_fault_to_string(const Netlist& nl, const TransitionFault& f) {
  std::string s = nl.gate(f.gate).name;
  if (f.pin != kStemPin) {
    s += "/in";
    s += std::to_string(f.pin);
    s += "(";
    s += nl.gate(nl.gate(f.gate).fanins[static_cast<std::size_t>(f.pin)]).name;
    s += ")";
  }
  s += f.slow_to_rise ? " slow-to-rise" : " slow-to-fall";
  return s;
}

std::vector<TransitionFault> enumerate_transition_faults(const Netlist& nl) {
  std::vector<TransitionFault> out;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    out.push_back(TransitionFault{g, kStemPin, false});
    out.push_back(TransitionFault{g, kStemPin, true});
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    for (std::size_t p = 0; p < gate.fanins.size(); ++p) {
      if (nl.fanout_count(gate.fanins[p]) == 1) continue;
      out.push_back(TransitionFault{g, static_cast<std::int16_t>(p), false});
      out.push_back(TransitionFault{g, static_cast<std::int16_t>(p), true});
    }
  }
  return out;
}

}  // namespace uniscan
