// Single stuck-at fault model.
//
// Faults live on *lines*: the output stem of a gate (pin == kStemPin) or an
// input pin of a gate (a fanout branch). Both are needed because a branch
// fault on a multi-fanout net is not equivalent to the stem fault.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace uniscan {

inline constexpr std::int16_t kStemPin = -1;

struct Fault {
  GateId gate = kNoGate;     // the gate whose output (stem) or input pin (branch) is faulty
  std::int16_t pin = kStemPin;
  bool stuck_one = false;    // false: stuck-at-0, true: stuck-at-1

  bool operator==(const Fault&) const = default;
  auto operator<=>(const Fault&) const = default;
};

/// "G12/2 s-a-1" style rendering using netlist names.
std::string fault_to_string(const Netlist& nl, const Fault& f);

}  // namespace uniscan
