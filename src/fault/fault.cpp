#include "fault/fault.hpp"

namespace uniscan {

std::string fault_to_string(const Netlist& nl, const Fault& f) {
  std::string s = nl.gate(f.gate).name;
  if (f.pin != kStemPin) {
    s += "/in";
    s += std::to_string(f.pin);
    s += "(";
    s += nl.gate(nl.gate(f.gate).fanins[static_cast<std::size_t>(f.pin)]).name;
    s += ")";
  }
  s += f.stuck_one ? " s-a-1" : " s-a-0";
  return s;
}

}  // namespace uniscan
