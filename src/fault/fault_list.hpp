// Fault universe enumeration and structural equivalence collapsing.
//
// Enumeration covers every line of the netlist: one stem per gate output
// (including primary inputs and DFF outputs) and one branch per gate input
// pin whose driving net has more than one fanout (single-fanout branches are
// structurally equivalent to their stems and are never enumerated).
//
// Collapsing applies the classical gate rules with union-find:
//   AND : in s-a-0 == out s-a-0        NAND: in s-a-0 == out s-a-1
//   OR  : in s-a-1 == out s-a-1        NOR : in s-a-1 == out s-a-0
//   BUF : in s-a-v == out s-a-v        NOT : in s-a-v == out s-a-(1-v)
// DFF boundaries are not collapsed across (detection times differ at
// power-up under the unknown initial state).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace uniscan {

using FaultId = std::uint32_t;

class FaultList {
 public:
  /// Build the collapsed fault list for `nl` (must be finalized).
  static FaultList collapsed(const Netlist& nl);

  /// Build the full uncollapsed list (for tests and cross-checks).
  static FaultList uncollapsed(const Netlist& nl);

  std::size_t size() const noexcept { return faults_.size(); }
  const Fault& operator[](FaultId id) const { return faults_[id]; }
  const std::vector<Fault>& faults() const noexcept { return faults_; }

  /// Total number of faults before collapsing (for reporting).
  std::size_t uncollapsed_count() const noexcept { return uncollapsed_count_; }

  /// The first `n` faults of this list (everything when n >= size()). The
  /// collapsed order is deterministic, so a prefix is a stable bounded
  /// target set (the corpus digest harness caps large-tier ATPG cost with
  /// it). uncollapsed_count() is preserved for reporting.
  FaultList prefix(std::size_t n) const;

  /// Reassemble a list from previously computed faults (the serve-layer disk
  /// cache deserializes collapsed lists with this). The caller vouches that
  /// `faults` came from collapsed()/uncollapsed() on the same netlist
  /// content; the cache cross-checks counts and a payload hash before
  /// trusting an entry.
  static FaultList from_faults(std::vector<Fault> faults, std::size_t uncollapsed_count) {
    FaultList fl;
    fl.faults_ = std::move(faults);
    fl.uncollapsed_count_ = uncollapsed_count;
    return fl;
  }

 private:
  std::vector<Fault> faults_;
  std::size_t uncollapsed_count_ = 0;
};

}  // namespace uniscan
