#include "serve/minijson.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace uniscan::serve {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  bool parse_string(std::string& out) {
    if (eof() || text[pos] != '"') return fail("expected '\"'");
    ++pos;
    out.clear();
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) break;
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; protocol strings are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  /// Skip one balanced array/object and return its raw text.
  bool skip_raw(std::string& out) {
    const std::size_t start = pos;
    int depth = 0;
    bool in_str = false;
    while (!eof()) {
      const char c = text[pos];
      if (in_str) {
        if (c == '\\') {
          ++pos;
          if (eof()) break;
        } else if (c == '"') {
          in_str = false;
        }
      } else if (c == '"') {
        in_str = true;
      } else if (c == '[' || c == '{') {
        ++depth;
      } else if (c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          ++pos;
          out = std::string(text.substr(start, pos - start));
          return true;
        }
      }
      ++pos;
    }
    return fail("unterminated array/object");
  }

  bool parse_value(JsonValue& v) {
    skip_ws();
    if (eof()) return fail("expected value");
    const char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      return parse_string(v.s);
    }
    if (c == '[' || c == '{') {
      v.kind = JsonValue::Kind::Raw;
      return skip_raw(v.s);
    }
    if (text.substr(pos, 4) == "true") {
      v.kind = JsonValue::Kind::Bool;
      v.b = true;
      pos += 4;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      v.kind = JsonValue::Kind::Bool;
      v.b = false;
      pos += 5;
      return true;
    }
    if (text.substr(pos, 4) == "null") {
      v.kind = JsonValue::Kind::Null;
      pos += 4;
      return true;
    }
    // number
    const std::size_t start = pos;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos;
    bool is_double = false;
    while (!eof()) {
      const char n = peek();
      if (std::isdigit(static_cast<unsigned char>(n))) {
        ++pos;
      } else if (n == '.' || n == 'e' || n == 'E' || n == '-' || n == '+') {
        is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) return fail("expected value");
    const std::string_view num = text.substr(start, pos - start);
    if (!is_double) {
      const auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), v.i);
      if (ec == std::errc() && p == num.data() + num.size()) {
        v.kind = JsonValue::Kind::Int;
        return true;
      }
    }
    try {
      v.d = std::stod(std::string(num));
    } catch (...) {
      return fail("bad number '" + std::string(num) + "'");
    }
    v.kind = JsonValue::Kind::Double;
    return true;
  }
};

}  // namespace

std::optional<JsonObject> parse_json_object(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  JsonObject obj;
  p.skip_ws();
  if (p.eof() || p.peek() != '{') {
    if (error) *error = "expected '{'";
    return std::nullopt;
  }
  ++p.pos;
  p.skip_ws();
  if (!p.eof() && p.peek() == '}') {
    ++p.pos;
  } else {
    while (true) {
      p.skip_ws();
      std::string key;
      if (!p.parse_string(key)) break;
      p.skip_ws();
      if (p.eof() || p.peek() != ':') {
        p.fail("expected ':'");
        break;
      }
      ++p.pos;
      JsonValue v;
      if (!p.parse_value(v)) break;
      obj[key] = std::move(v);
      p.skip_ws();
      if (!p.eof() && p.peek() == ',') {
        ++p.pos;
        continue;
      }
      if (!p.eof() && p.peek() == '}') {
        ++p.pos;
        break;
      }
      p.fail("expected ',' or '}'");
      break;
    }
  }
  if (!p.error.empty()) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.eof()) {
    if (error) *error = "trailing characters after object";
    return std::nullopt;
  }
  return obj;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::key(std::string_view k) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"";
  body_ += json_escape(k);
  body_ += "\":";
}

void JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  body_ += "\"";
  body_ += json_escape(value);
  body_ += "\"";
}

void JsonWriter::field(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
}

void JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
}

void JsonWriter::field(std::string_view k, double value) {
  key(k);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  body_ += buf;
}

void JsonWriter::field(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
}

void JsonWriter::raw_field(std::string_view k, std::string_view raw_json) {
  key(k);
  body_ += raw_json;
}

}  // namespace uniscan::serve
