// Minimal JSON for the serve protocol (line-delimited job objects).
//
// The repo's bench JSON is write-only; the serve loop also has to *read*
// jobs, so this adds a small parser for one JSON object per line. Values are
// scalars (string/number/bool/null); nested arrays/objects are preserved as
// raw JSON text (the protocol keeps job fields flat, but a forgiving parser
// never dies on extras). No external dependencies, by repo policy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace uniscan::serve {

struct JsonValue {
  enum class Kind { Null, Bool, Int, Double, String, Raw };
  Kind kind = Kind::Null;
  bool b = false;
  std::int64_t i = 0;
  double d = 0;
  std::string s;  // String: decoded text; Raw: verbatim JSON

  std::string as_string(const std::string& fallback = {}) const {
    return kind == Kind::String ? s : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    if (kind == Kind::Int) return i;
    if (kind == Kind::Double) return static_cast<std::int64_t>(d);
    return fallback;
  }
  double as_double(double fallback = 0) const {
    if (kind == Kind::Double) return d;
    if (kind == Kind::Int) return static_cast<double>(i);
    return fallback;
  }
  bool as_bool(bool fallback = false) const { return kind == Kind::Bool ? b : fallback; }
};

/// Keys in first-seen order are irrelevant to the protocol; std::map gives
/// deterministic iteration for error messages and tests.
using JsonObject = std::map<std::string, JsonValue>;

/// Parse one JSON object. Returns nullopt and fills `error` (if non-null) on
/// malformed input; trailing garbage after the closing brace is an error.
std::optional<JsonObject> parse_json_object(std::string_view text, std::string* error = nullptr);

/// JSON string escaping (shared with the writer; mirrors bench_common's).
std::string json_escape(std::string_view s);

/// Incremental writer for one flat JSON object, emitted in append order.
class JsonWriter {
 public:
  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value) { field(key, std::string_view(value)); }
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, int value) { field(key, static_cast<std::int64_t>(value)); }
  void field(std::string_view key, double value);
  void field(std::string_view key, bool value);
  /// Verbatim JSON (pre-rendered array/object).
  void raw_field(std::string_view key, std::string_view raw_json);

  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

}  // namespace uniscan::serve
