#include "serve/serve_loop.hpp"

#include <algorithm>
#include <atomic>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "core/exit_codes.hpp"
#include "corpus/corpus.hpp"
#include "corpus/golden.hpp"
#include "serve/minijson.hpp"

namespace uniscan::serve {

namespace {

const char* source_name(ArtifactCache::Source s) noexcept {
  switch (s) {
    case ArtifactCache::Source::Ram: return "ram";
    case ArtifactCache::Source::Disk: return "disk";
    case ArtifactCache::Source::Built: return "built";
  }
  return "unknown";
}

std::string counters_json(const obs::CounterArray& c) {
  JsonWriter w;
  for (std::size_t i = 0; i < obs::kNumCounters; ++i)
    w.field(obs::counter_name(static_cast<obs::Counter>(i)), static_cast<std::uint64_t>(c[i]));
  return w.str();
}

std::string stage_names_json(const std::vector<obs::StageStat>& stages) {
  std::string out = "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(stages[i].name) + "\"";
  }
  return out + "]";
}

/// Result fields a job's work computes for its response line, handed from
/// the work closure to the completion callback (the last attempt wins).
struct JobPayload {
  std::mutex mu;
  std::string cache_source;
  std::string stages_json = "[]";
  std::string result_json;  // pre-rendered "result" object, "" when failed
};

struct ServerState {
  explicit ServerState(const ServeOptions& opt) : cache(opt.cache), sched(opt.sched) {}

  ArtifactCache cache;
  JobScheduler sched;
  std::mutex out_mu;
  std::atomic<bool> any_failed{false};
  std::atomic<bool> any_shed{false};
};

void emit_line(ServerState& st, std::ostream& out, const std::string& line) {
  const std::lock_guard<std::mutex> lock(st.out_mu);
  out << line << "\n" << std::flush;
}

/// Render the per-job usage record (the bench-JSON-v2-style row).
std::string render_job_response(const std::string& op, const JobResult& r, JobPayload* payload) {
  JsonWriter w;
  w.field("schema_version", 2);
  w.field("op", op);
  w.field("id", r.id);
  w.field("tenant", r.tenant);
  w.field("status", job_status_name(r.status));
  w.field("attempts", r.attempts);
  w.field("wall_ms", r.wall_ms);
  if (payload) {
    const std::lock_guard<std::mutex> lock(payload->mu);
    if (!payload->cache_source.empty()) w.field("cache", payload->cache_source);
    w.raw_field("stages", payload->stages_json);
    if (!payload->result_json.empty()) w.raw_field("result", payload->result_json);
  }
  if (r.status == JobStatus::Failed) {
    w.field("stage", r.error_stage);
    w.field("error", r.error);
  } else if (r.status == JobStatus::Shed || r.status == JobStatus::Cancelled) {
    w.field("error", r.error);
  }
  w.raw_field("counters", counters_json(r.counters));
  return w.str();
}

std::string render_generate_result(const GenerateCompactReport& rep) {
  JsonWriter w;
  w.field("circuit", rep.circuit);
  w.field("inputs", rep.num_inputs);
  w.field("dffs", rep.num_dffs);
  w.field("detected", rep.atpg.detected);
  w.field("redundant", rep.atpg.proved_redundant);
  w.field("raw_len", rep.raw.total);
  w.field("restored_len", rep.restored.total);
  w.field("omitted_len", rep.omitted.total);
  w.field("extra_detected", rep.extra_detected);
  w.field("timed_out", rep.timed_out());
  return w.str();
}

std::string render_translate_result(const TranslateCompactReport& rep) {
  JsonWriter w;
  w.field("circuit", rep.circuit);
  w.field("baseline_detected", rep.baseline.detected);
  w.field("translated_len", rep.translated.total);
  w.field("restored_len", rep.restored.total);
  w.field("omitted_len", rep.omitted.total);
  w.field("timed_out", rep.timed_out());
  return w.str();
}

/// Resolve the request's circuit text: inline `bench` field, or `corpus`
/// naming a manifest row. Throws on unknown/unfetchable corpus entries.
struct ResolvedCircuit {
  std::string name;
  std::string bench_text;
  const CorpusEntry* corpus_entry = nullptr;  // when resolved via corpus
};

ResolvedCircuit resolve_circuit(const JsonObject& req) {
  ResolvedCircuit rc;
  const auto corpus_it = req.find("corpus");
  if (corpus_it != req.end() && corpus_it->second.kind == JsonValue::Kind::String) {
    const std::string& cname = corpus_it->second.s;
    const CorpusEntry* e = CorpusRegistry::global().find(cname);
    if (!e) throw std::runtime_error("unknown corpus entry '" + cname + "'");
    rc.name = e->name;
    rc.bench_text = CorpusRegistry::global().bench_text(*e);
    rc.corpus_entry = e;
    return rc;
  }
  const auto bench_it = req.find("bench");
  if (bench_it == req.end() || bench_it->second.kind != JsonValue::Kind::String)
    throw std::runtime_error("job needs a 'bench' (inline .bench text) or 'corpus' field");
  rc.bench_text = bench_it->second.s;
  const auto name_it = req.find("circuit");
  rc.name = name_it != req.end() ? name_it->second.as_string("inline") : "inline";
  return rc;
}

void handle_job(ServerState& st, std::ostream& out, const std::string& op,
                const JsonObject& req) {
  JobSpec spec;
  spec.id = req.count("id") ? req.at("id").as_string() : "";
  spec.tenant = req.count("tenant") ? req.at("tenant").as_string("default") : "default";
  spec.budget_secs = req.count("budget_secs") ? req.at("budget_secs").as_double(0) : 0;
  spec.max_retries =
      req.count("max_retries") ? static_cast<int>(req.at("max_retries").as_int(-1)) : -1;

  ResolvedCircuit rc;
  try {
    rc = resolve_circuit(req);
  } catch (const std::exception& e) {
    JobResult r;
    r.id = spec.id;
    r.tenant = spec.tenant;
    r.status = JobStatus::Failed;
    r.attempts = 0;
    r.error_stage = "request";
    r.error = e.what();
    st.any_failed = true;
    emit_line(st, out, render_job_response(op, r, nullptr));
    return;
  }
  spec.circuit = rc.name;

  // The digest is defined over the single-chain scan configuration; other
  // ops honor a requested chain count.
  const std::size_t chains =
      op == "digest" ? 1
                     : static_cast<std::size_t>(
                           req.count("chains") ? std::max<std::int64_t>(1, req.at("chains").as_int(1)) : 1);

  auto payload = std::make_shared<JobPayload>();
  const CorpusEntry* corpus_entry = rc.corpus_entry;

  JobScheduler::Work work = [&st, op, rc, chains, corpus_entry, payload](const CancelToken& tok) {
    const ArtifactCache::GetResult got = st.cache.get(rc.name, rc.bench_text, chains);
    std::string result_json, stages_json = "[]";
    if (op == "digest") {
      DigestOptions dopt = corpus_entry
                               ? digest_profile(corpus_entry->tier, corpus_entry->num_gates)
                               : digest_profile(CorpusTier::Fast);
      dopt.atpg.cancel = tok;
      const CircuitDigest d = compute_circuit_digest(got.artifacts, dopt);
      JsonWriter w;
      w.field("circuit", d.circuit);
      w.field("sha", d.sha_hex);
      result_json = w.str();
    } else if (op == "translate") {
      PipelineConfig cfg;
      cfg.cancel = tok;
      const TranslateCompactReport rep = run_translate_and_compact(got.artifacts, cfg);
      result_json = render_translate_result(rep);
      stages_json = stage_names_json(rep.stages);
    } else {
      PipelineConfig cfg;
      cfg.cancel = tok;
      const GenerateCompactReport rep = run_generate_and_compact(got.artifacts, cfg);
      result_json = render_generate_result(rep);
      stages_json = stage_names_json(rep.stages);
    }
    const std::lock_guard<std::mutex> lock(payload->mu);
    payload->cache_source = source_name(got.source);
    payload->stages_json = std::move(stages_json);
    payload->result_json = std::move(result_json);
  };

  JobScheduler::Callback done = [&st, &out, op, payload](const JobResult& r) {
    if (r.status == JobStatus::Failed) st.any_failed = true;
    if (r.status == JobStatus::Cancelled) st.any_shed = true;
    emit_line(st, out, render_job_response(op, r, payload.get()));
  };

  JobResult shed;
  if (!st.sched.submit(std::move(spec), std::move(work), std::move(done), &shed)) {
    st.any_shed = true;
    emit_line(st, out, render_job_response(op, shed, nullptr));
  }
}

void handle_stats(ServerState& st, std::ostream& out, const JsonObject& req) {
  const CacheStats cs = st.cache.stats();
  const JobScheduler::Stats ss = st.sched.stats();
  JsonWriter w;
  w.field("schema_version", 2);
  w.field("op", "stats");
  if (req.count("id")) w.field("id", req.at("id").as_string());
  w.field("status", "done");
  {
    JsonWriter c;
    c.field("hits_ram", cs.hits_ram);
    c.field("hits_disk", cs.hits_disk);
    c.field("misses", cs.misses);
    c.field("quarantined", cs.quarantined);
    c.field("evictions", cs.evictions);
    c.field("ram_entries", cs.ram_entries);
    c.field("ram_bytes", cs.ram_bytes);
    w.raw_field("cache", c.str());
  }
  {
    JsonWriter s;
    s.field("submitted", ss.submitted);
    s.field("admitted", ss.admitted);
    s.field("shed", ss.shed);
    s.field("done", ss.done);
    s.field("failed", ss.failed);
    s.field("cancelled", ss.cancelled);
    s.field("retries", ss.retries);
    w.raw_field("scheduler", s.str());
  }
  w.raw_field("counters", counters_json(obs::totals()));
  emit_line(st, out, w.str());
}

void ack(ServerState& st, std::ostream& out, const std::string& op, const JsonObject& req,
         const char* status = "done") {
  JsonWriter w;
  w.field("schema_version", 2);
  w.field("op", op);
  if (req.count("id")) w.field("id", req.at("id").as_string());
  w.field("status", status);
  emit_line(st, out, w.str());
}

void reject(ServerState& st, std::ostream& out, const std::string& reason) {
  JsonWriter w;
  w.field("schema_version", 2);
  w.field("op", "error");
  w.field("status", "failed");
  w.field("error", reason);
  st.any_failed = true;
  emit_line(st, out, w.str());
}

}  // namespace

int run_serve(std::istream& in, std::ostream& out, const ServeOptions& opt) {
  ServerState st(opt);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string err;
    const std::optional<JsonObject> req = parse_json_object(line, &err);
    if (!req) {
      reject(st, out, "malformed request: " + err);
      continue;
    }
    const std::string op = req->count("op") ? req->at("op").as_string() : "";
    if (op == "ping") {
      ack(st, out, op, *req);
    } else if (op == "stats") {
      handle_stats(st, out, *req);
    } else if (op == "pause") {
      st.sched.pause_dispatch();
      ack(st, out, op, *req);
    } else if (op == "resume") {
      st.sched.resume_dispatch();
      ack(st, out, op, *req);
    } else if (op == "drain") {
      st.sched.drain();
      ack(st, out, op, *req);
    } else if (op == "shutdown") {
      st.sched.shutdown();
      ack(st, out, op, *req);
      break;
    } else if (op == "generate" || op == "translate" || op == "digest") {
      handle_job(st, out, op, *req);
    } else {
      reject(st, out, "unknown op '" + op + "'");
    }
  }
  st.sched.shutdown();
  if (st.any_failed.load()) return kExitHadFailures;
  if (st.any_shed.load()) return kExitOverload;
  return kExitOk;
}

}  // namespace uniscan::serve
