#include "serve/artifact_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/fault_list.hpp"
#include "netlist/bench_io.hpp"
#include "obs/counters.hpp"
#include "util/fault_inject.hpp"
#include "util/sha256.hpp"

namespace uniscan::serve {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMagic = "uniscan-artifact-cache v";

/// Rough resident footprint of one RAM entry: the scan netlist + its shared
/// compile dominate and scale with gate count; the constant is calibrated
/// loosely high so the LRU budget errs toward evicting.
std::size_t estimate_bytes(const std::string& bench_text, const CircuitArtifacts& a) {
  return bench_text.size() + a.faults->size() * sizeof(Fault) +
         a.scan->netlist.num_gates() * 160 + 4096;
}

std::string serialize_payload(const std::string& bench_text, const FaultList& fl) {
  std::ostringstream os;
  os << bench_text;
  os << "FAULTS " << fl.size() << " uncollapsed " << fl.uncollapsed_count() << "\n";
  for (const Fault& f : fl.faults())
    os << f.gate << " " << f.pin << " " << (f.stuck_one ? 1 : 0) << "\n";
  os << "END\n";
  return os.str();
}

}  // namespace

std::string ArtifactCache::key_for(std::string_view bench_text, std::size_t num_chains) {
  std::string material = std::string(kMagic) + std::to_string(kArtifactCacheVersion) +
                         "\nchains " + std::to_string(num_chains) + "\n";
  material += bench_text;
  return sha256_hex(material);
}

ArtifactCache::GetResult ArtifactCache::get(const std::string& name,
                                            const std::string& bench_text,
                                            std::size_t num_chains) {
  const std::string key = key_for(bench_text, num_chains);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++stats_.hits_ram;
      obs::count(obs::Counter::CacheHits);
      return {it->second.artifacts, Source::Ram};
    }
  }

  // Disk tier, then full rebuild. Both happen outside the lock: builds are
  // expensive and deterministic, so two racing misses at worst build the
  // same artifacts twice (last insert wins; either copy is bit-identical).
  CircuitArtifacts a = try_load_disk(key, name, bench_text, num_chains);
  Source source = Source::Disk;
  if (!a.scan) {
    a = build_circuit_artifacts(read_bench_string(bench_text, name, "cache:" + name), num_chains);
    source = Source::Built;
    store_disk(key, name, bench_text, num_chains, a);
  }

  const std::size_t bytes = estimate_bytes(bench_text, a);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (source == Source::Built) {
      ++stats_.misses;
      obs::count(obs::Counter::CacheMisses);
    } else {
      ++stats_.hits_disk;
      obs::count(obs::Counter::CacheHits);
    }
    if (map_.find(key) == map_.end()) insert_ram_locked(key, a, bytes);
  }
  return {std::move(a), source};
}

void ArtifactCache::insert_ram_locked(const std::string& key, const CircuitArtifacts& a,
                                      std::size_t bytes) {
  lru_.push_front(key);
  map_[key] = Entry{a, bytes, lru_.begin()};
  ram_bytes_ += bytes;
  while (ram_bytes_ > opt_.max_ram_bytes && map_.size() > 1) {
    const std::string& victim = lru_.back();
    const auto vit = map_.find(victim);
    ram_bytes_ -= vit->second.bytes;
    map_.erase(vit);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::string ArtifactCache::disk_path(const std::string& key) const {
  return opt_.disk_dir + "/" + key + ".uart";
}

CircuitArtifacts ArtifactCache::try_load_disk(const std::string& key, const std::string& name,
                                              const std::string& bench_text,
                                              std::size_t num_chains) {
  if (opt_.disk_dir.empty()) return {};
  const std::string path = disk_path(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) return {};

  try {
    // Deterministic corruption hook: an injected cache_load fault takes the
    // same quarantine-and-rebuild path a real corrupt entry would.
    maybe_inject_fault(name, "cache_load");

    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("unreadable");
    std::ostringstream whole;
    whole << in.rdbuf();
    const std::string file = whole.str();

    std::istringstream header(file);
    std::string line;
    if (!std::getline(header, line) ||
        line != std::string(kMagic) + std::to_string(kArtifactCacheVersion))
      throw std::runtime_error("bad magic/version: '" + line + "'");
    std::string want_key, want_circuit;
    std::size_t chains = 0, bench_bytes = 0, nfaults = 0, uncollapsed = 0;
    std::string payload_sha;
    std::string tag;
    while (std::getline(header, line) && line != "---") {
      std::istringstream ls(line);
      ls >> tag;
      if (tag == "key") ls >> want_key;
      else if (tag == "circuit") ls >> want_circuit;
      else if (tag == "chains") ls >> chains;
      else if (tag == "bench_bytes") ls >> bench_bytes;
      else if (tag == "faults") ls >> nfaults;
      else if (tag == "uncollapsed") ls >> uncollapsed;
      else if (tag == "payload_sha") ls >> payload_sha;
      if (ls.fail()) throw std::runtime_error("malformed header line '" + line + "'");
    }
    if (line != "---") throw std::runtime_error("missing header terminator");
    if (want_key != key) throw std::runtime_error("key mismatch");
    if (chains != num_chains) throw std::runtime_error("chains mismatch");

    const std::size_t payload_off = static_cast<std::size_t>(header.tellg());
    if (header.tellg() < 0 || payload_off > file.size())
      throw std::runtime_error("truncated payload");
    const std::string_view payload(file.data() + payload_off, file.size() - payload_off);
    if (sha256_hex(payload) != payload_sha) throw std::runtime_error("payload hash mismatch");
    if (bench_bytes > payload.size()) throw std::runtime_error("truncated bench text");
    if (payload.substr(0, bench_bytes) != bench_text)
      throw std::runtime_error("bench text mismatch");

    std::istringstream body(std::string(payload.substr(bench_bytes)));
    std::size_t fcount = 0, funcollapsed = 0;
    std::string kw1, kw2;
    body >> kw1 >> fcount >> kw2 >> funcollapsed;
    if (kw1 != "FAULTS" || kw2 != "uncollapsed" || fcount != nfaults ||
        funcollapsed != uncollapsed)
      throw std::runtime_error("fault-list header mismatch");
    std::vector<Fault> faults;
    faults.reserve(fcount);
    for (std::size_t i = 0; i < fcount; ++i) {
      std::uint32_t g = 0;
      int pin = 0, s1 = 0;
      if (!(body >> g >> pin >> s1)) throw std::runtime_error("truncated fault list");
      Fault f;
      f.gate = g;
      f.pin = static_cast<std::int16_t>(pin);
      f.stuck_one = s1 != 0;
      faults.push_back(f);
    }
    body >> kw1;
    if (kw1 != "END") throw std::runtime_error("missing END marker");

    // The bench text is byte-identical to the request's, so re-parsing and
    // re-inserting scan reproduces the exact netlist; only the collapse —
    // the part the disk tier persists — is skipped.
    CircuitArtifacts a;
    a.circuit = name;
    auto sc = std::make_shared<ScanCircuit>(
        insert_scan(read_bench_string(bench_text, name, "cache:" + name), num_chains));
    sc->netlist.compiled_shared();
    a.scan = std::move(sc);
    a.faults = std::make_shared<FaultList>(FaultList::from_faults(std::move(faults), uncollapsed));
    return a;
  } catch (const std::exception&) {
    quarantine(path);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.quarantined;
    }
    obs::count(obs::Counter::CacheQuarantined);
    return {};
  }
}

void ArtifactCache::store_disk(const std::string& key, const std::string& name,
                               const std::string& bench_text, std::size_t num_chains,
                               const CircuitArtifacts& a) {
  if (opt_.disk_dir.empty()) return;
  std::error_code ec;
  fs::create_directories(opt_.disk_dir, ec);

  const std::string payload = serialize_payload(bench_text, *a.faults);
  std::ostringstream os;
  os << kMagic << kArtifactCacheVersion << "\n";
  os << "key " << key << "\n";
  os << "circuit " << name << "\n";
  os << "chains " << num_chains << "\n";
  os << "bench_bytes " << bench_text.size() << "\n";
  os << "faults " << a.faults->size() << "\n";
  os << "uncollapsed " << a.faults->uncollapsed_count() << "\n";
  os << "payload_sha " << sha256_hex(payload) << "\n";
  os << "---\n";
  os << payload;

  // Crash-safe publish: whole entry to a temp file, fsync-free rename into
  // place. A crash mid-write leaves only a temp file (ignored by loads); a
  // torn rename is impossible on POSIX.
  const std::string path = disk_path(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // cache write failure is never fatal
    out << os.str();
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

void ArtifactCache::quarantine(const std::string& path) {
  std::error_code ec;
  fs::rename(path, path + ".quarantined", ec);
  if (ec) fs::remove(path, ec);  // rename failed: drop it rather than retry it
}

CacheStats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.ram_entries = map_.size();
  s.ram_bytes = ram_bytes_;
  return s;
}

void ArtifactCache::clear_ram() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  ram_bytes_ = 0;
}

}  // namespace uniscan::serve
