// Content-hash-keyed cache of per-circuit pipeline artifacts (DESIGN.md §5k).
//
// A cache entry holds CircuitArtifacts — the scan-inserted netlist (whose
// shared CompiledNetlist is warmed once) and the collapsed fault list — for
// one (netlist content, chain count) pair. Both are pure functions of the
// key, so serving from cache is bit-identical to rebuilding; the key is
//
//   sha256( "uniscan-artifact v<version>\nchains <n>\n" + bench_text )
//
// so a format bump or a different scan configuration can never alias an old
// entry. Two tiers:
//
//  * RAM: LRU over a byte budget. A hit skips parse, scan insertion, fault
//    collapsing AND netlist compile.
//  * Disk (optional): one `<key>.uart` file per entry holding the original
//    bench text plus the serialized collapsed fault list, with byte counts
//    and a payload SHA-256 in the header. A hit re-parses the text (cheap)
//    but skips fault collapsing. Crash-safe by construction: writes go to a
//    temp file and rename into place; loads validate magic/version, key,
//    counts, payload length and payload hash, and ANY mismatch — truncation,
//    bit flips, stale versions — quarantines the file (renamed to
//    `*.quarantined`), bumps obs::Counter::CacheQuarantined, and rebuilds
//    from source. A corrupt cache is never trusted and never fatal.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/pipeline.hpp"

namespace uniscan::serve {

/// Bumped whenever the on-disk entry layout or the artifact semantics
/// change; part of the cache key, so old entries simply miss.
inline constexpr int kArtifactCacheVersion = 1;

struct CacheStats {
  std::uint64_t hits_ram = 0;
  std::uint64_t hits_disk = 0;
  std::uint64_t misses = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t evictions = 0;
  std::size_t ram_entries = 0;
  std::size_t ram_bytes = 0;
};

class ArtifactCache {
 public:
  struct Options {
    std::size_t max_ram_bytes = 256u << 20;
    std::string disk_dir;  // "" = RAM-only cache
  };

  /// Where a get() found its artifacts (reported per job).
  enum class Source { Ram, Disk, Built };

  explicit ArtifactCache(Options opt) : opt_(std::move(opt)) {}

  /// Cache key for one (content, chains) pair.
  static std::string key_for(std::string_view bench_text, std::size_t num_chains);

  struct GetResult {
    CircuitArtifacts artifacts;
    Source source = Source::Built;
  };

  /// Look up or build the artifacts for `bench_text` (a .bench netlist,
  /// parsed as `name` on rebuild). Throws what parsing/scan insertion throw
  /// on genuinely bad input — but never because of cache state.
  GetResult get(const std::string& name, const std::string& bench_text,
                std::size_t num_chains = 1);

  CacheStats stats() const;

  /// Drop every RAM entry (disk entries stay; tests use this to force the
  /// disk-load path).
  void clear_ram();

 private:
  struct Entry {
    CircuitArtifacts artifacts;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void insert_ram_locked(const std::string& key, const CircuitArtifacts& a, std::size_t bytes);
  std::string disk_path(const std::string& key) const;
  /// Returns empty artifacts (null scan) when the entry is absent; corrupt
  /// entries are quarantined inside.
  CircuitArtifacts try_load_disk(const std::string& key, const std::string& name,
                                 const std::string& bench_text, std::size_t num_chains);
  void store_disk(const std::string& key, const std::string& name, const std::string& bench_text,
                  std::size_t num_chains, const CircuitArtifacts& a);
  void quarantine(const std::string& path);

  Options opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recent
  std::size_t ram_bytes_ = 0;
  CacheStats stats_;
};

}  // namespace uniscan::serve
