#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "core/pipeline.hpp"
#include "util/fault_inject.hpp"
#include "util/thread_pool.hpp"

namespace uniscan::serve {

using Clock = std::chrono::steady_clock;

const char* job_status_name(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::Done: return "done";
    case JobStatus::Failed: return "failed";
    case JobStatus::Shed: return "shed";
    case JobStatus::Cancelled: return "cancelled";
  }
  return "unknown";
}

JobScheduler::JobScheduler(Options opt) : opt_(std::move(opt)) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

JobScheduler::~JobScheduler() { shutdown(); }

bool JobScheduler::submit(JobSpec spec, Work work, Callback done, JobResult* shed_result) {
  const auto shed = [&](const std::string& reason) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.submitted;
      ++stats_.shed;
    }
    obs::count(obs::Counter::JobsShed);
    if (shed_result) {
      shed_result->id = spec.id;
      shed_result->tenant = spec.tenant;
      shed_result->status = JobStatus::Shed;
      shed_result->error = reason;
    }
    return false;
  };

  // Deterministic admission-failure hook (UNISCAN_FAULT_INJECT=<ckt>:admit).
  try {
    maybe_inject_fault(spec.circuit, "admit");
  } catch (const std::exception& e) {
    return shed(e.what());
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      lock.unlock();
      return shed("scheduler shutting down");
    }
    std::deque<Job>& q = queues_[spec.tenant];
    if (q.size() >= opt_.max_queue_per_tenant) {
      lock.unlock();
      return shed("tenant queue full (" + std::to_string(opt_.max_queue_per_tenant) +
                  " jobs queued)");
    }
    if (std::find(rr_order_.begin(), rr_order_.end(), spec.tenant) == rr_order_.end())
      rr_order_.push_back(spec.tenant);
    Job job;
    job.spec = std::move(spec);
    job.work = std::move(work);
    job.done = std::move(done);
    job.ready = Clock::now();
    q.push_back(std::move(job));
    ++stats_.submitted;
    ++stats_.admitted;
  }
  cv_dispatch_.notify_one();
  return true;
}

void JobScheduler::pause_dispatch() {
  const std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void JobScheduler::resume_dispatch() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_dispatch_.notify_one();
}

void JobScheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] {
    if (in_flight_ > 0 || !delayed_.empty()) return false;
    for (const auto& [tenant, q] : queues_)
      if (!q.empty()) return false;
    return true;
  });
}

void JobScheduler::shutdown() {
  {
    // A paused scheduler must still shut down: un-gate dispatch so the
    // drain below can make progress.
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_dispatch_.notify_all();
  drain();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_dispatch_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void JobScheduler::shutdown_now() {
  std::vector<Job> cancelled;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [tenant, q] : queues_) {
      for (Job& j : q) cancelled.push_back(std::move(j));
      q.clear();
    }
    for (Job& j : delayed_) cancelled.push_back(std::move(j));
    delayed_.clear();
  }
  for (Job& j : cancelled) {
    JobResult r;
    r.id = j.spec.id;
    r.tenant = j.spec.tenant;
    r.status = JobStatus::Cancelled;
    r.attempts = j.attempts;
    r.error = "cancelled at shutdown";
    finish(j, std::move(r));
  }
  shutdown();
}

JobScheduler::Stats JobScheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double JobScheduler::backoff_ms(const Job& job) const {
  // attempt k (1-based) already failed: wait base * 2^(k-1) plus a
  // deterministic jitter derived from (id, attempt) — reproducible runs,
  // decorrelated tenants.
  const double base = std::max(0.0, opt_.backoff_base_ms);
  const double exp = base * static_cast<double>(1u << std::min(job.attempts - 1, 10));
  const std::size_t h =
      std::hash<std::string>{}(job.spec.id) ^ (static_cast<std::size_t>(job.attempts) * 0x9e3779b97f4a7c15ull);
  const double jitter = base > 0 ? static_cast<double>(h % 1000) / 1000.0 * base : 0;
  return exp + jitter;
}

std::vector<JobScheduler::Job> JobScheduler::collect_wave_locked() {
  std::vector<Job> wave;
  if (rr_order_.empty()) return wave;
  const std::size_t cap = std::max<std::size_t>(1, ThreadPool::global().num_workers());
  std::size_t idle_tenants = 0;
  while (wave.size() < cap && idle_tenants < rr_order_.size()) {
    const std::string& tenant = rr_order_[rr_next_];
    rr_next_ = (rr_next_ + 1) % rr_order_.size();
    std::size_t taken = 0;
    const auto qit = queues_.find(tenant);
    if (qit != queues_.end()) {
      const std::size_t quantum = std::max<std::size_t>(1, opt_.drr_quantum);
      while (taken < quantum && !qit->second.empty() && wave.size() < cap) {
        wave.push_back(std::move(qit->second.front()));
        qit->second.pop_front();
        ++taken;
      }
    }
    idle_tenants = taken == 0 ? idle_tenants + 1 : 0;
  }
  return wave;
}

void JobScheduler::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Promote delayed (backing-off) jobs whose wait expired.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < delayed_.size();) {
      if (delayed_[i].ready <= now) {
        queues_[delayed_[i].spec.tenant].push_back(std::move(delayed_[i]));
        delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    bool have_ready = false;
    for (const auto& [tenant, q] : queues_)
      if (!q.empty()) {
        have_ready = true;
        break;
      }

    if (!paused_ && have_ready) {
      std::vector<Job> wave = collect_wave_locked();
      if (!wave.empty()) {
        in_flight_ += wave.size();
        lock.unlock();
        run_wave(std::move(wave));
        lock.lock();
        continue;
      }
    }

    if (stopping_ && !have_ready && delayed_.empty() && in_flight_ == 0) return;

    if (!delayed_.empty()) {
      Clock::time_point next = delayed_.front().ready;
      for (const Job& j : delayed_) next = std::min(next, j.ready);
      cv_dispatch_.wait_until(lock, next);
    } else {
      cv_dispatch_.wait(lock);
    }
  }
}

void JobScheduler::run_wave(std::vector<Job> wave) {
  // One pool task per job: the job's whole attempt stays on one worker
  // (nested parallel_for is inline), so CounterScope deltas are exact and
  // the work itself is bit-identical to a direct call.
  std::vector<std::optional<JobResult>> terminal(wave.size());
  std::vector<char> retrying(wave.size(), 0);
  ThreadPool::global().parallel_for(wave.size(), [&](std::size_t i, std::size_t) {
    Job& job = wave[i];
    ++job.attempts;
    const Clock::time_point t0 = Clock::now();
    const obs::CounterScope scope;
    JobResult r;
    r.id = job.spec.id;
    r.tenant = job.spec.tenant;
    r.attempts = job.attempts;
    try {
      maybe_inject_fault(job.spec.circuit, "dispatch");
      maybe_inject_fault(job.spec.circuit, "job_run");
      CancelToken tok = opt_.parent;
      if (job.spec.budget_secs > 0) {
        tok = tok.child(Deadline::after(job.spec.budget_secs));
      } else if (opt_.default_budget_secs > 0) {
        tok = tok.child(Deadline::after(opt_.default_budget_secs));
      }
      job.work(tok);
      r.status = JobStatus::Done;
    } catch (const std::exception& e) {
      const bool transient = is_injected_fault_message(e.what());
      const int budget = job.spec.max_retries >= 0 ? job.spec.max_retries : opt_.max_retries;
      if (transient && job.attempts <= budget) {
        retrying[i] = 1;
      } else {
        r.status = JobStatus::Failed;
        if (const auto* se = dynamic_cast<const StageError*>(&e)) r.error_stage = se->stage();
        else r.error_stage = "job_run";
        r.error = e.what();
      }
    }
    r.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    r.counters = scope.deltas();
    if (!retrying[i]) terminal[i] = std::move(r);
  });

  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (retrying[i]) {
      obs::count(obs::Counter::JobRetries);
      Job& job = wave[i];
      job.ready = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(backoff_ms(job)));
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
        delayed_.push_back(std::move(job));
        --in_flight_;
      }
      cv_dispatch_.notify_one();
    } else {
      finish(wave[i], std::move(*terminal[i]));
    }
  }
  cv_idle_.notify_all();
}

void JobScheduler::finish(Job& job, JobResult result) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    switch (result.status) {
      case JobStatus::Done: ++stats_.done; break;
      case JobStatus::Failed: ++stats_.failed; break;
      case JobStatus::Cancelled: ++stats_.cancelled; break;
      case JobStatus::Shed: break;  // shed jobs never reach finish()
    }
    if (in_flight_ > 0 && result.status != JobStatus::Cancelled) --in_flight_;
  }
  if (job.done) job.done(result);
  cv_idle_.notify_all();
}

}  // namespace uniscan::serve
