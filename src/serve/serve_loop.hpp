// Line-delimited JSON job protocol over std streams (`uniscan_cli serve`).
//
// One JSON object per input line, one JSON response line per request (see
// README "Service mode" for the schema). Job ops (generate / translate /
// digest) flow through the JobScheduler + ArtifactCache; control ops (ping /
// stats / pause / resume / shutdown) are answered synchronously. Responses
// are emitted in completion order; the `id` field correlates them.
#pragma once

#include <iosfwd>

#include "serve/artifact_cache.hpp"
#include "serve/scheduler.hpp"

namespace uniscan::serve {

struct ServeOptions {
  ArtifactCache::Options cache;
  JobScheduler::Options sched;
};

/// Run the serve loop until `shutdown` or EOF. Returns the process exit
/// code: kExitHadFailures when any job failed permanently, else
/// kExitOverload when any job was shed, else kExitOk.
int run_serve(std::istream& in, std::ostream& out, const ServeOptions& opt);

}  // namespace uniscan::serve
