// Multi-tenant job scheduler with admission control, fair-share dispatch,
// and retry-with-backoff (DESIGN.md §5k).
//
// Jobs are arbitrary work closures (the serve loop submits pipeline flows;
// the table binaries submit their own row lambdas). The scheduler owns:
//
//  * Admission control — one bounded FIFO queue per tenant. A submit to a
//    full queue is REJECTED synchronously (JobStatus::Shed, the explicit
//    backpressure signal) instead of growing memory without bound.
//  * Fair dispatch — a dispatcher thread assembles waves by deficit
//    round-robin over the tenant queues (each tenant earns `drr_quantum`
//    credits per round, a job costs one), then runs the wave on
//    ThreadPool::global() via parallel_for. A job executes entirely on one
//    worker (nested fan-out runs inline), so per-job counter deltas are
//    exact and results stay bit-identical at any pool size.
//  * Budgets — each job gets a CancelToken derived from its budget_secs
//    (plus any parent token), so one tenant's pathological circuit degrades
//    per PR 4 semantics instead of starving the others.
//  * Retries — an attempt that fails *transiently* (injected fault, or any
//    exception classified retryable) is re-queued with exponential backoff
//    and deterministic jitter until the retry budget is exhausted, then the
//    job reaches the permanently-failed terminal state.
//
// Exactly one completion callback fires per ADMITTED job (Done, Failed or
// Cancelled); shed jobs are reported synchronously by submit(). stats()
// exposes the conservation law the soak test asserts:
//   submitted == admitted + shed  and  admitted == done+failed+cancelled.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "util/cancel.hpp"

namespace uniscan::serve {

enum class JobStatus { Done, Failed, Shed, Cancelled };

const char* job_status_name(JobStatus s) noexcept;

struct JobResult {
  std::string id;
  std::string tenant;
  JobStatus status = JobStatus::Done;
  int attempts = 0;       // execution attempts (retries = attempts - 1)
  double wall_ms = 0;     // last attempt's wall time
  std::string error_stage;  // Failed: stage tag from StageError, else "job_run"
  std::string error;        // Failed/Shed/Cancelled: human-readable reason
  obs::CounterArray counters{};  // last attempt's counter deltas
};

struct JobSpec {
  std::string id;
  std::string tenant = "default";
  std::string circuit;     // fault-injection / reporting tag
  double budget_secs = 0;  // 0 = no per-job deadline
  int max_retries = -1;    // -1 = scheduler default
};

class JobScheduler {
 public:
  struct Options {
    std::size_t max_queue_per_tenant = 64;
    int max_retries = 2;          // retry budget for transient failures
    double backoff_base_ms = 10;  // attempt k waits base * 2^(k-1) + jitter
    std::size_t drr_quantum = 1;  // jobs per tenant per dispatch round
    double default_budget_secs = 0;
    CancelToken parent;  // cancels every job (e.g. process shutdown)
  };

  /// Work runs on a pool worker; `cancel` is the job's derived token.
  using Work = std::function<void(const CancelToken& cancel)>;
  /// Fires exactly once per admitted job, from a pool worker (terminal
  /// success/failure) or from stop() (Cancelled). Keep it cheap.
  using Callback = std::function<void(const JobResult&)>;

  explicit JobScheduler(Options opt);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admit or shed. Returns true when admitted; on shed returns false after
  /// filling `shed_result` (if non-null) — the caller reports it, keeping
  /// the one-callback-per-admitted-job invariant simple.
  bool submit(JobSpec spec, Work work, Callback done, JobResult* shed_result = nullptr);

  /// Gate dispatch (queues still admit). The deterministic-backpressure
  /// tests pause, fill a queue to overflow, then resume.
  void pause_dispatch();
  void resume_dispatch();

  /// Block until every admitted job reached a terminal state.
  void drain();

  /// Drain, then stop the dispatcher. Called by the destructor.
  void shutdown();

  /// Cancel queued jobs (terminal state Cancelled), let running attempts
  /// finish, then stop. The fast path for process teardown.
  void shutdown_now();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t retries = 0;
  };
  Stats stats() const;

 private:
  struct Job {
    JobSpec spec;
    Work work;
    Callback done;
    int attempts = 0;
    std::chrono::steady_clock::time_point ready;  // backoff gate
  };

  void dispatcher_loop();
  std::vector<Job> collect_wave_locked();
  void run_wave(std::vector<Job> wave);
  void finish(Job& job, JobResult result);
  double backoff_ms(const Job& job) const;

  Options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_dispatch_;  // dispatcher wakeups
  std::condition_variable cv_idle_;      // drain() wakeups
  std::map<std::string, std::deque<Job>> queues_;  // per tenant, FIFO
  std::vector<Job> delayed_;                       // backoff parking lot
  std::map<std::string, std::size_t> deficit_;     // DRR credits
  std::vector<std::string> rr_order_;              // tenant round-robin order
  std::size_t rr_next_ = 0;
  std::size_t in_flight_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  Stats stats_;
  std::thread dispatcher_;
};

}  // namespace uniscan::serve
