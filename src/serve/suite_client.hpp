// Thin-client suite fan-out over the JobScheduler (--via-scheduler).
//
// run_suite_tasks_scheduled mirrors run_suite_tasks_streaming's contract —
// ordered prefix emission, per-task failure isolation, deterministic
// fail-fast — but routes every circuit task through the scheduler's
// admission control, fair dispatch and retry machinery instead of a bare
// parallel_for. The row-computing lambda is the same one the direct path
// runs, so emitted rows are bit-identical; only the scheduling layer
// changes (the serve-vs-direct equivalence test pins this).
#pragma once

#include <mutex>
#include <type_traits>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/scheduler.hpp"
#include "workloads/suite.hpp"

namespace uniscan::serve {

template <typename Fn, typename Emit>
auto run_suite_tasks_scheduled(JobScheduler& sched, const std::vector<SuiteEntry>& suite,
                               Fn&& fn, Emit&& emit, bool fail_fast = false) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<TaskOutcome<R>> out(suite.size());
  std::vector<char> done(suite.size(), 0);
  std::mutex mu;
  std::size_t next_to_emit = 0;

  const auto mark_done = [&](std::size_t task) {
    const std::lock_guard<std::mutex> lock(mu);
    done[task] = 1;
    while (next_to_emit < out.size() && done[next_to_emit]) {
      // Fail-fast runs stall emission at the first failed row: the
      // exception escapes after the drain instead (streaming contract).
      if (fail_fast && out[next_to_emit].failed()) break;
      emit(next_to_emit, out[next_to_emit]);
      ++next_to_emit;
    }
  };

  for (std::size_t i = 0; i < suite.size(); ++i) {
    JobSpec spec;
    spec.id = suite[i].name;
    spec.tenant = "suite";
    spec.circuit = suite[i].name;
    const bool admitted = sched.submit(
        std::move(spec), [&out, &fn, i](const CancelToken&) { out[i].value = fn(i); },
        [&out, &suite, &mark_done, i](const JobResult& r) {
          if (r.status != JobStatus::Done) {
            out[i].failure = TaskFailure{
                suite[i].name, r.error_stage.empty() ? "unknown" : r.error_stage, r.error};
          }
          mark_done(i);
        });
    if (!admitted) {
      out[i].failure = TaskFailure{suite[i].name, "admit", "job shed (tenant queue full)"};
      mark_done(i);
    }
  }
  sched.drain();

  if (fail_fast) {
    for (const TaskOutcome<R>& o : out)
      if (o.failed()) throw StageError(o.failure->stage, o.failure->what);
  }
  return out;
}

}  // namespace uniscan::serve
