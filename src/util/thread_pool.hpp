// Small fixed-size worker pool for batch-parallel fault simulation.
//
// parallel_for(n, fn) invokes fn(task_index, worker_index) for every task
// index in [0, n) and blocks until all tasks finished. The calling thread
// participates as worker 0; a pool of size N uses N-1 spawned threads with
// worker indices 1..N-1, so per-worker scratch arrays of size num_workers()
// are race-free. Task order across workers is unspecified — callers must
// write results only into task-indexed slots, which keeps every consumer of
// the pool bit-identical regardless of thread count.
//
// A parallel_for issued from inside a pool task runs inline on the issuing
// worker (no nested fan-out, no deadlock); the nested call reuses the
// worker's own index so scratch buffers stay private.
#pragma once

#include <cstddef>
#include <functional>

namespace uniscan {

class ThreadPool {
 public:
  /// A pool with `num_workers` total workers (including the caller).
  /// 0 and 1 both mean "no extra threads": parallel_for runs inline.
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const noexcept { return num_workers_; }

  /// Run fn(task_index, worker_index) for all task_index in [0, n);
  /// blocks until every task completed. worker_index < num_workers().
  /// When tasks throw, every remaining task still runs (result slots are
  /// always all written and the pool stays usable), and the exception of the
  /// LOWEST-index failing task is rethrown in the caller — deterministic at
  /// any thread count, not a completion-order race.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// Change the worker count of THIS pool in place: joins the current
  /// threads and spawns a new set. References to the pool stay valid, so
  /// components that captured ThreadPool::global() before a --threads=N
  /// flag was parsed see the new size. Not safe to call while a
  /// parallel_for is in flight.
  void resize(std::size_t num_workers);

  /// The process-wide pool used by the simulators and the compaction
  /// engine. Defaults to 1 worker (fully serial, deterministic).
  static ThreadPool& global();

  /// Resize the global pool to `n` workers (the `--threads=N` flag).
  /// Equivalent to global().resize(n); the pool object is never replaced.
  static void set_global_threads(std::size_t n);

  /// Worker index of the calling thread while it executes a pool task (the
  /// same value parallel_for passes as fn's second argument); 0 on any
  /// thread outside a task. Lets per-worker state (scratch arrays, counter
  /// shards, trace buffers) be indexed without threading the index through
  /// every call signature.
  static std::size_t worker_id() noexcept;

  /// True while the calling thread is inside a pool task — the condition
  /// under which a nested parallel_for runs inline on this worker.
  static bool in_pool_task() noexcept;

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null for the inline (<=1 worker) pool
  std::size_t num_workers_ = 1;
};

}  // namespace uniscan
