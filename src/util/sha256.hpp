// Self-contained SHA-256 (FIPS 180-4) for corpus content pinning and golden
// result digests. No external dependency: the corpus workflow (DESIGN.md §5i)
// must hash identically on every platform the suite builds on.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace uniscan {

/// Incremental SHA-256. Feed any number of update() calls, then hex() (or
/// digest()) exactly once.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(const void* data, std::size_t len) noexcept;
  void update(std::string_view s) noexcept { update(s.data(), s.size()); }

  /// Finalize and return the 32-byte digest. The object must not be reused.
  std::array<std::uint8_t, 32> digest() noexcept;

  /// Finalize and return the digest as 64 lowercase hex characters.
  std::string hex() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot helpers.
std::string sha256_hex(std::string_view data);
/// Hash a file's raw bytes. Throws std::runtime_error when the file cannot
/// be opened.
std::string sha256_file_hex(const std::string& path);

}  // namespace uniscan
