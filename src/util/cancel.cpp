#include "util/cancel.hpp"

#include <atomic>
#include <limits>

#include "obs/counters.hpp"

namespace uniscan {

Deadline Deadline::after(double seconds) noexcept {
  if (seconds <= 0) return at(Clock::now());
  // Saturate instead of overflowing for absurdly large budgets.
  const double max_secs =
      std::chrono::duration<double>(Clock::duration::max()).count() / 4;
  if (seconds >= max_secs) return never();
  return at(Clock::now() +
            std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(seconds)));
}

Deadline Deadline::at(Clock::time_point when) noexcept {
  Deadline d;
  d.when_ = when;
  return d;
}

double Deadline::remaining_seconds() const noexcept {
  if (is_never()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(when_ - Clock::now()).count();
}

struct CancelToken::State {
  std::atomic<bool> fired{false};
  Deadline deadline;
  std::shared_ptr<const State> parent;

  bool poll() const noexcept {
    for (const State* s = this; s; s = s->parent.get()) {
      if (s->fired.load(std::memory_order_relaxed)) return true;
      if (s->deadline.expired()) {
        // Latch so later polls (and polls of descendants) skip the clock.
        const_cast<State*>(s)->fired.store(true, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }
};

CancelToken::CancelToken(Deadline deadline) : state_(std::make_shared<State>()) {
  state_->deadline = deadline;
}

CancelToken CancelToken::child(Deadline deadline) const {
  CancelToken c(deadline);
  c.state_->parent = state_;
  return c;
}

void CancelToken::request_cancel() const noexcept {
  if (state_) state_->fired.store(true, std::memory_order_relaxed);
}

bool CancelToken::poll() const noexcept {
  obs::count(obs::Counter::CancelPolls);
  return state_ && state_->poll();
}

Deadline CancelToken::deadline() const noexcept {
  return state_ ? state_->deadline : Deadline::never();
}

}  // namespace uniscan
