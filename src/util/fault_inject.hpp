// Deterministic failure injection for robustness tests and CI.
//
// UNISCAN_FAULT_INJECT holds one or more ';'-separated specs of the form
//
//   <circuit>:<stage>[:<count>]
//
// A matching call site throws a std::runtime_error the moment it starts;
// every other circuit and stage runs untouched. <circuit> and <stage> match
// exactly, or by prefix when they end in "*" ("*" alone matches anything,
// "tenant2-*" matches one tenant's job family); with a <count>, the spec
// fires only for the first
// `count` matching calls and then goes inert — the hook the serve layer's
// retry tests use to make a job fail transiently N times and then succeed.
// Unset (the normal case), the hook is a single getenv.
//
// The pipeline fires it per (circuit, stage) pair (scan/faults/atpg/...);
// the serve layer adds its own stages (cache_load, admit, dispatch,
// job_run), so scheduler failure paths are deterministically testable like
// the pipeline's.
//
// This exists so the suite-isolation tests and the CI robustness job can
// prove that one poisoned circuit never takes down a suite run — the
// exception travels the exact path a real parse error or ATPG blowup would.
#pragma once

#include <string>
#include <string_view>

namespace uniscan {

/// Throws std::runtime_error when a UNISCAN_FAULT_INJECT spec matches
/// `<circuit>:<stage>` (and its count, if any, is not exhausted); returns
/// quietly otherwise.
void maybe_inject_fault(const std::string& circuit, const std::string& stage);

/// True when an exception message came from maybe_inject_fault. Injected
/// faults model *transient* failures, so the serve scheduler classifies them
/// as retryable by this predicate (a StageError wrapper preserves the text).
bool is_injected_fault_message(std::string_view what) noexcept;

}  // namespace uniscan
