// Deterministic failure injection for robustness tests and CI.
//
// UNISCAN_FAULT_INJECT=<circuit>:<stage> makes the matching pipeline stage
// throw a std::runtime_error the moment it starts; every other circuit and
// stage runs untouched. <stage> may be "*" to kill whichever stage of the
// circuit runs first. Unset (the normal case), the hook is a single getenv.
//
// This exists so the suite-isolation tests and the CI robustness job can
// prove that one poisoned circuit never takes down a suite run — the
// exception travels the exact path a real parse error or ATPG blowup would.
#pragma once

#include <string>

namespace uniscan {

/// Throws std::runtime_error when UNISCAN_FAULT_INJECT matches
/// `<circuit>:<stage>`; returns quietly otherwise.
void maybe_inject_fault(const std::string& circuit, const std::string& stage);

}  // namespace uniscan
