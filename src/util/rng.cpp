#include "util/rng.hpp"

// Header-only implementation; this translation unit exists so the library
// always has at least one object for the util component and to catch ODR
// problems early.
namespace uniscan {
static_assert(Rng::min() == 0);
static_assert(Rng::max() == 0xffffffffffffffffULL);
}  // namespace uniscan
