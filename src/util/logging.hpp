// Minimal leveled logging. Experiments print structured tables to stdout;
// the logger is for diagnostics on stderr and is off (Warn) by default.
#pragma once

#include <sstream>
#include <string>

namespace uniscan {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold. Messages below this level are discarded.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

/// Stream-style log statement: LOG(Info) << "fault " << f;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_threshold()) {}
  ~LogLine() {
    if (enabled_) detail::log_emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace uniscan

#define UNISCAN_LOG(level) ::uniscan::LogLine(::uniscan::LogLevel::level)
