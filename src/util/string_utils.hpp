// Small string helpers used by the .bench parser and table writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace uniscan {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Split on a single-character delimiter; elements are trimmed.
/// Empty elements (after trimming) are kept so callers can detect syntax
/// errors such as "AND(a,,b)".
std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` starts with `prefix` (case-sensitive).
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Uppercase ASCII copy.
std::string to_upper(std::string_view s);

/// Copy of `s` capped at `max_len` characters for error messages: longer
/// input is cut and suffixed with "..." so a corrupt multi-megabyte line
/// cannot explode a diagnostic.
std::string excerpt(std::string_view s, std::size_t max_len = 48);

}  // namespace uniscan
