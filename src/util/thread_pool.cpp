#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace uniscan {

namespace {
// Set while a thread is executing pool tasks; nested parallel_for calls
// detect it and run inline on the issuing worker.
thread_local std::size_t tls_worker_id = 0;
thread_local bool tls_in_pool_task = false;
}  // namespace

struct ThreadPool::Impl {
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex err_mutex;
    std::exception_ptr error;
    // Task index of the captured exception: the LOWEST-index failing task
    // wins regardless of completion order, so the rethrown exception is the
    // same at every thread count (the pool's determinism contract).
    std::size_t error_task = static_cast<std::size_t>(-1);
  };

  std::mutex mutex;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Job> job;    // current job, null when idle
  std::uint64_t generation = 0;
  bool stopping = false;
  std::vector<std::thread> threads;

  void worker_loop(std::size_t worker_id) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> j;
      {
        std::unique_lock<std::mutex> lock(mutex);
        start_cv.wait(lock, [&] { return stopping || generation != seen; });
        if (stopping) return;
        seen = generation;
        j = job;  // keeps the job alive past the caller's return
      }
      if (j) run_tasks(*j, worker_id);
    }
  }

  void run_tasks(Job& j, std::size_t worker_id) {
    const std::size_t saved_id = tls_worker_id;
    const bool saved_in = tls_in_pool_task;
    tls_worker_id = worker_id;
    tls_in_pool_task = true;
    for (;;) {
      const std::size_t t = j.next.fetch_add(1, std::memory_order_relaxed);
      if (t >= j.n) break;
      try {
        (*j.fn)(t, worker_id);
      } catch (...) {
        std::lock_guard<std::mutex> lock(j.err_mutex);
        if (t < j.error_task) {
          j.error_task = t;
          j.error = std::current_exception();
        }
      }
      if (j.done.fetch_add(1, std::memory_order_acq_rel) + 1 == j.n) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
    tls_worker_id = saved_id;
    tls_in_pool_task = saved_in;
  }
};

ThreadPool::ThreadPool(std::size_t num_workers) : num_workers_(num_workers ? num_workers : 1) {
  if (num_workers_ <= 1) return;
  impl_ = new Impl;
  impl_->threads.reserve(num_workers_ - 1);
  for (std::size_t w = 1; w < num_workers_; ++w)
    impl_->threads.emplace_back([this, w] { impl_->worker_loop(w); });
}

ThreadPool::~ThreadPool() { resize(1); }

void ThreadPool::resize(std::size_t num_workers) {
  const std::size_t target = num_workers ? num_workers : 1;
  if (target == num_workers_) return;
  if (impl_) {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->stopping = true;
    }
    impl_->start_cv.notify_all();
    for (auto& t : impl_->threads) t.join();
    delete impl_;
    impl_ = nullptr;
  }
  num_workers_ = target;
  if (num_workers_ <= 1) return;
  impl_ = new Impl;
  impl_->threads.reserve(num_workers_ - 1);
  for (std::size_t w = 1; w < num_workers_; ++w)
    impl_->threads.emplace_back([this, w] { impl_->worker_loop(w); });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (!impl_ || n == 1 || in_pool_task()) {
    // Serial pool, a single task, or a nested call from inside a pool task:
    // run inline on this thread, keeping its worker index for scratch reuse.
    // Mirrors the threaded path's exception contract: every task still runs
    // (callers rely on all result slots being written), and the exception of
    // the lowest-index failing task is rethrown afterwards.
    const std::size_t w = worker_id();
    std::exception_ptr error;
    for (std::size_t t = 0; t < n; ++t) {
      try {
        fn(t, w);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  auto job = std::make_shared<Impl::Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->start_cv.notify_all();

  // The caller participates as worker 0.
  impl_->run_tasks(*job, 0);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return job->done.load(std::memory_order_acquire) == n; });
    impl_->job.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(1);
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::global() { return *global_pool_slot(); }

void ThreadPool::set_global_threads(std::size_t n) { global_pool_slot()->resize(n); }

std::size_t ThreadPool::worker_id() noexcept { return tls_worker_id; }

bool ThreadPool::in_pool_task() noexcept { return tls_in_pool_task; }

}  // namespace uniscan
