#include "util/string_utils.hpp"

#include <cctype>

namespace uniscan {

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string excerpt(std::string_view s, std::size_t max_len) {
  if (s.size() <= max_len) return std::string(s);
  return std::string(s.substr(0, max_len)) + "...";
}

}  // namespace uniscan
