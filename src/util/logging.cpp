#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace uniscan {
namespace {
std::atomic<LogLevel> g_threshold{LogLevel::Warn};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[uniscan %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace uniscan
