// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic behaviour in uniscan (random x-fill, random test generation
// phases, synthetic circuit construction) is driven by Xoshiro256** seeded
// through SplitMix64, so a run is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

namespace uniscan {

/// SplitMix64: used to expand a single seed into the Xoshiro256** state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform boolean.
  bool next_bool() noexcept { return (next() >> 63) != 0; }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless method without the rejection loop would
    // introduce a tiny bias; for bounds far below 2^64 (always true here)
    // plain modulo bias is negligible, but we keep rejection for rigor.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace uniscan
