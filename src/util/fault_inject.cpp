#include "util/fault_inject.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace uniscan {

namespace {

constexpr std::string_view kMessagePrefix = "injected fault (UNISCAN_FAULT_INJECT=";

struct Rule {
  std::string circuit;
  std::string stage;
  long remaining = -1;  // -1 = unlimited; counts down to 0 then inert
  std::string spec;     // original text, for the exception message
};

/// Field match: exact, or prefix when the pattern ends in `*` (so `*` alone
/// matches everything and `tenant2-*` matches one tenant's job family).
bool field_matches(const std::string& pattern, const std::string& value) {
  if (!pattern.empty() && pattern.back() == '*')
    return value.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  return pattern == value;
}

/// One `<circuit>:<stage>[:<count>]` spec. The stage is the field after the
/// LAST colon (the historical rfind parse, so odd circuit names keep
/// working) unless that field is all digits with two more colons in front —
/// then it is the fire count. Malformed specs are inert, never fatal.
void parse_spec(std::string_view spec, std::vector<Rule>& out) {
  if (spec.empty()) return;
  Rule r;
  r.spec = std::string(spec);
  std::string_view rest = spec;
  const auto last = rest.rfind(':');
  if (last == std::string_view::npos) return;
  const std::string_view tail = rest.substr(last + 1);
  const bool tail_is_count =
      !tail.empty() && tail.find_first_not_of("0123456789") == std::string_view::npos &&
      rest.substr(0, last).rfind(':') != std::string_view::npos;
  if (tail_is_count) {
    r.remaining = std::strtol(std::string(tail).c_str(), nullptr, 10);
    rest = rest.substr(0, last);
  }
  const auto colon = rest.rfind(':');
  if (colon == std::string_view::npos) return;
  r.circuit = std::string(rest.substr(0, colon));
  r.stage = std::string(rest.substr(colon + 1));
  out.push_back(std::move(r));
}

/// Stateful spec registry: counts persist across calls for one env value and
/// reset whenever the variable changes (the tests flip it between suite runs
/// inside one process, so both the rules and their counts must follow it).
class Registry {
 public:
  void maybe_throw(const char* env, const std::string& circuit, const std::string& stage) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (env != env_cache_) {
      env_cache_ = env;
      rules_.clear();
      std::string_view all(env_cache_);
      while (!all.empty()) {
        const auto semi = all.find(';');
        parse_spec(all.substr(0, semi), rules_);
        if (semi == std::string_view::npos) break;
        all = all.substr(semi + 1);
      }
    }
    for (Rule& r : rules_) {
      if (r.remaining == 0) continue;
      if (!field_matches(r.circuit, circuit)) continue;
      if (!field_matches(r.stage, stage)) continue;
      if (r.remaining > 0) --r.remaining;
      throw std::runtime_error(std::string(kMessagePrefix) + r.spec + ") in stage '" + stage +
                               "' of circuit '" + circuit + "'");
    }
  }

 private:
  std::mutex mu_;
  std::string env_cache_;
  std::vector<Rule> rules_;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void maybe_inject_fault(const std::string& circuit, const std::string& stage) {
  // Read the environment on every call: the tests flip the variable between
  // suite runs inside one process, so a cached value would go stale.
  const char* env = std::getenv("UNISCAN_FAULT_INJECT");
  if (!env || !*env) return;
  registry().maybe_throw(env, circuit, stage);
}

bool is_injected_fault_message(std::string_view what) noexcept {
  return what.substr(0, kMessagePrefix.size()) == kMessagePrefix;
}

}  // namespace uniscan
