#include "util/fault_inject.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace uniscan {

void maybe_inject_fault(const std::string& circuit, const std::string& stage) {
  // Read the environment on every call: the tests flip the variable between
  // suite runs inside one process, so a cached value would go stale.
  const char* env = std::getenv("UNISCAN_FAULT_INJECT");
  if (!env || !*env) return;

  const std::string_view spec(env);
  const auto colon = spec.rfind(':');
  if (colon == std::string_view::npos) return;  // malformed spec: inert
  const std::string_view want_circuit = spec.substr(0, colon);
  const std::string_view want_stage = spec.substr(colon + 1);

  if (want_circuit != circuit) return;
  if (want_stage != "*" && want_stage != stage) return;
  throw std::runtime_error("injected fault (UNISCAN_FAULT_INJECT=" + std::string(spec) +
                           ") in stage '" + stage + "' of circuit '" + circuit + "'");
}

}  // namespace uniscan
