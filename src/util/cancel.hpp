// Cooperative cancellation and wall-clock deadlines (DESIGN.md §5f).
//
// A Deadline is a point on the monotonic clock (never(), by default). A
// CancelToken is a copyable handle on shared cancellation state: it fires
// when its own deadline expires, when request_cancel() is called on any
// copy, or when any ancestor token fires (child() links tokens, so a
// per-circuit budget nests under a suite-wide one).
//
// poll() is the cooperative check the long-running loops call — the PODEM
// backtrack loop, the ATPG per-fault loops, restoration's restore loop and
// omission's trial loop. It is cheap: a default-constructed (inert) token
// polls false with a single branch, and an armed token reads one relaxed
// atomic plus, until it latches, the monotonic clock. Once a token fires it
// stays fired (the result is latched), so every subsequent poll agrees.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace uniscan {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: never expires (no clock reads on the poll path).
  Deadline() = default;

  static Deadline never() noexcept { return {}; }
  static Deadline after(double seconds) noexcept;
  static Deadline at(Clock::time_point when) noexcept;

  bool is_never() const noexcept { return when_ == Clock::time_point::max(); }
  bool expired() const noexcept {
    return !is_never() && Clock::now() >= when_;
  }
  /// Seconds until expiry: +inf when never, <= 0 when already expired.
  double remaining_seconds() const noexcept;

  /// The earlier of the two (never() is later than everything).
  static Deadline earlier(const Deadline& a, const Deadline& b) noexcept {
    return a.when_ <= b.when_ ? a : b;
  }

  Clock::time_point when() const noexcept { return when_; }

 private:
  Clock::time_point when_ = Clock::time_point::max();
};

class CancelToken {
 public:
  /// Inert token: poll() is always false, copies are free.
  CancelToken() = default;

  /// A root token that fires when `deadline` expires.
  explicit CancelToken(Deadline deadline);

  /// A token that fires when THIS token fires or when `deadline` expires.
  /// Calling child() on an inert token creates a root token.
  CancelToken child(Deadline deadline) const;

  /// True when the token carries cancellation state (non-default).
  bool armed() const noexcept { return state_ != nullptr; }

  /// Fire the token manually; every copy and descendant observes it.
  void request_cancel() const noexcept;

  /// Cooperative check: true once the token (or an ancestor) has fired.
  bool poll() const noexcept;

  /// This token's own deadline (never() for inert tokens).
  Deadline deadline() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Iterations of an inner trial/search loop between two real CancelToken
/// polls (see StridedPoll). 16 keeps the worst-case extra latency after a
/// deadline fires at 15 loop bodies — each of which is a full simulation
/// trial or search step, so responsiveness stays within the same order as a
/// per-iteration poll — while cutting the poll counts the bench JSON showed
/// (30k-195k cancel_polls per circuit) by ~16x.
inline constexpr std::uint32_t kCancelPollStride = 16;

/// Stride-damped wrapper for the per-iteration poll sites of the inner
/// fault-sim/search loops: the FIRST call always polls the token (a
/// pre-fired deadline still aborts before any work), later calls poll every
/// kCancelPollStride-th iteration, and a fired result latches. The stride
/// schedule is a pure function of the call count, so the set of real polls
/// — and the cancel_polls counter — stays thread-count invariant.
class StridedPoll {
 public:
  explicit StridedPoll(const CancelToken& token) noexcept : token_(&token) {}

  bool poll() noexcept {
    if (fired_) return true;
    if (calls_++ % kCancelPollStride == 0) fired_ = token_->poll();
    return fired_;
  }

 private:
  const CancelToken* token_;
  std::uint32_t calls_ = 0;
  bool fired_ = false;
};

}  // namespace uniscan
