// Cooperative cancellation and wall-clock deadlines (DESIGN.md §5f).
//
// A Deadline is a point on the monotonic clock (never(), by default). A
// CancelToken is a copyable handle on shared cancellation state: it fires
// when its own deadline expires, when request_cancel() is called on any
// copy, or when any ancestor token fires (child() links tokens, so a
// per-circuit budget nests under a suite-wide one).
//
// poll() is the cooperative check the long-running loops call — the PODEM
// backtrack loop, the ATPG per-fault loops, restoration's restore loop and
// omission's trial loop. It is cheap: a default-constructed (inert) token
// polls false with a single branch, and an armed token reads one relaxed
// atomic plus, until it latches, the monotonic clock. Once a token fires it
// stays fired (the result is latched), so every subsequent poll agrees.
#pragma once

#include <chrono>
#include <memory>

namespace uniscan {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: never expires (no clock reads on the poll path).
  Deadline() = default;

  static Deadline never() noexcept { return {}; }
  static Deadline after(double seconds) noexcept;
  static Deadline at(Clock::time_point when) noexcept;

  bool is_never() const noexcept { return when_ == Clock::time_point::max(); }
  bool expired() const noexcept {
    return !is_never() && Clock::now() >= when_;
  }
  /// Seconds until expiry: +inf when never, <= 0 when already expired.
  double remaining_seconds() const noexcept;

  /// The earlier of the two (never() is later than everything).
  static Deadline earlier(const Deadline& a, const Deadline& b) noexcept {
    return a.when_ <= b.when_ ? a : b;
  }

  Clock::time_point when() const noexcept { return when_; }

 private:
  Clock::time_point when_ = Clock::time_point::max();
};

class CancelToken {
 public:
  /// Inert token: poll() is always false, copies are free.
  CancelToken() = default;

  /// A root token that fires when `deadline` expires.
  explicit CancelToken(Deadline deadline);

  /// A token that fires when THIS token fires or when `deadline` expires.
  /// Calling child() on an inert token creates a root token.
  CancelToken child(Deadline deadline) const;

  /// True when the token carries cancellation state (non-default).
  bool armed() const noexcept { return state_ != nullptr; }

  /// Fire the token manually; every copy and descendant observes it.
  void request_cancel() const noexcept;

  /// Cooperative check: true once the token (or an ancestor) has fired.
  bool poll() const noexcept;

  /// This token's own deadline (never() for inert tokens).
  Deadline deadline() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace uniscan
