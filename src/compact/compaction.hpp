// Shared result type of the static compaction procedures.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/sequence.hpp"

namespace uniscan {

struct CompactionResult {
  TestSequence sequence;            // the compacted sequence
  std::size_t original_length = 0;
  std::size_t vectors_removed = 0;
  // Faults detected by the compacted sequence that the original sequence did
  // NOT detect (compaction can gain coverage; Table 6's `ext det` column).
  std::size_t extra_detected = 0;
  std::size_t rounds = 0;           // passes/rounds the procedure ran
  std::uint64_t gate_evals = 0;     // total gate-word evaluations spent
  /// True when the procedure's cancel token fired. The sequence is still a
  /// consistent result — the last state every committed step verified —
  /// just less compacted than an unbudgeted run would produce.
  bool timed_out = false;
};

}  // namespace uniscan
