// Vector-restoration-based static compaction for sequential test sequences
// (after Pomeranz & Reddy, ICCD-97 [23]).
//
// Starting from an empty selection, faults are processed in decreasing order
// of their detection time under the original sequence. For each fault not
// yet detected by the selected subsequence, vectors are restored backwards
// from the fault's detection time (with geometric growth of the restored
// segment) until the fault is detected again. The final subsequence keeps
// the original vector order.
//
// Because restored segments interact through the circuit state, the result
// is re-verified and additional restoration rounds run until every
// originally detected fault is detected by the compacted sequence — the
// procedure never trades away coverage.
#pragma once

#include <span>

#include "compact/compaction.hpp"
#include "fault/fault.hpp"
#include "fault/transition_fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"
#include "util/cancel.hpp"

namespace uniscan {

struct RestorationOptions {
  std::size_t max_rounds = 8;  // safety bound; convergence is typically 1-2
  /// After restoration converges, try dropping each restored contiguous
  /// segment wholesale (in the spirit of the segment pruning of Bommu et
  /// al., ICCAD-98 [24]); a drop is kept when every target fault stays
  /// detected. Cheap relative to vector omission because segments are few.
  bool prune_segments = false;
  /// Cooperative deadline (DESIGN.md §5f). Restoration is only coverage-safe
  /// once it has CONVERGED, so a timeout before convergence returns the
  /// ORIGINAL sequence unchanged (identity compaction) with `timed_out` set;
  /// a timeout during segment pruning keeps the converged selection.
  CancelToken cancel;
};

CompactionResult restoration_compact(const Netlist& nl, const TestSequence& seq,
                                     std::span<const Fault> faults,
                                     const RestorationOptions& options = {});

/// Transition-fault variant: identical algorithm over the gross-delay model.
CompactionResult restoration_compact(const Netlist& nl, const TestSequence& seq,
                                     std::span<const TransitionFault> faults,
                                     const RestorationOptions& options = {});

}  // namespace uniscan
