#include "compact/restoration.hpp"

#include "compact/compact_impl.hpp"
#include "sim/fault_sim.hpp"
#include "sim/transition_sim.hpp"

namespace uniscan {

CompactionResult restoration_compact(const Netlist& nl, const TestSequence& seq,
                                     std::span<const Fault> faults,
                                     const RestorationOptions& options) {
  return detail::restoration_impl<FaultSimulator, Fault>(nl, seq, faults, options);
}

CompactionResult restoration_compact(const Netlist& nl, const TestSequence& seq,
                                     std::span<const TransitionFault> faults,
                                     const RestorationOptions& options) {
  return detail::restoration_impl<TransitionFaultSimulator, TransitionFault>(nl, seq, faults,
                                                                             options);
}

}  // namespace uniscan
