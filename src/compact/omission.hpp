// Vector-omission-based static compaction for sequential test sequences
// (after Pomeranz & Reddy, DAC-96 [22]).
//
// Each vector of the sequence is tentatively omitted; the omission is kept
// if the remaining sequence still detects every fault the original sequence
// detected (checked by full resimulation — the circuit state downstream of
// the omitted vector changes, so nothing short of resimulation is sound).
// Passes repeat until a pass removes nothing or the pass limit is reached.
//
// Because the unified sequence represents scan shifts explicitly, omission
// freely shortens complete scan operations into limited ones — the paper's
// central observation.
#pragma once

#include <span>

#include "compact/compaction.hpp"
#include "fault/fault.hpp"
#include "fault/transition_fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"
#include "util/cancel.hpp"

namespace uniscan {

struct OmissionOptions {
  std::size_t max_passes = 4;
  /// Trial order within a pass: true = last vector first (default; later
  /// vectors depend on fewer downstream detections), false = first vector
  /// first. Exposed for the ablation bench.
  bool back_to_front = true;
  /// Snapshot each fault batch's simulation state every this many frames so
  /// a trial erasure resumes from the nearest snapshot instead of frame 0.
  /// 0 disables checkpointing (every trial simulates from power-up). Purely
  /// a performance knob — the result is bit-identical for every value.
  std::size_t checkpoint_interval = 4;
  /// Cooperative deadline (DESIGN.md §5f), polled between trial omissions.
  /// Every committed omission has already passed full resimulation, so on
  /// expiry the current sequence is returned as-is with `timed_out` set.
  CancelToken cancel;
};

CompactionResult omission_compact(const Netlist& nl, const TestSequence& seq,
                                  std::span<const Fault> faults,
                                  const OmissionOptions& options = {});

/// Transition-fault variant: identical algorithm over the gross-delay model.
CompactionResult omission_compact(const Netlist& nl, const TestSequence& seq,
                                  std::span<const TransitionFault> faults,
                                  const OmissionOptions& options = {});

}  // namespace uniscan
