#include "compact/omission.hpp"

#include "compact/compact_impl.hpp"
#include "sim/fault_sim.hpp"
#include "sim/transition_sim.hpp"

namespace uniscan {

CompactionResult omission_compact(const Netlist& nl, const TestSequence& seq,
                                  std::span<const Fault> faults,
                                  const OmissionOptions& options) {
  return detail::omission_impl<FaultSimulator, Fault>(nl, seq, faults, options);
}

CompactionResult omission_compact(const Netlist& nl, const TestSequence& seq,
                                  std::span<const TransitionFault> faults,
                                  const OmissionOptions& options) {
  return detail::omission_impl<TransitionFaultSimulator, TransitionFault>(nl, seq, faults,
                                                                          options);
}

}  // namespace uniscan
