// Shared implementation of the static compaction procedures, generic over
// the fault model: any (Simulator, Fault) pair with
//   Simulator(const Netlist&)
//   run(seq, span<Fault>) -> vector<DetectionRecord>
//   detects_all(seq, span<Fault>) -> bool
// works — instantiated for stuck-at and transition faults.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "compact/compaction.hpp"
#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"

namespace uniscan::detail {

template <typename Simulator, typename FaultT>
CompactionResult omission_impl(const Netlist& nl, const TestSequence& seq,
                               std::span<const FaultT> faults, const OmissionOptions& options) {
  Simulator sim(nl);
  CompactionResult result;
  result.original_length = seq.length();

  const auto base = sim.run(seq, faults);
  std::vector<FaultT> must;
  for (std::size_t i = 0; i < base.size(); ++i)
    if (base[i].detected) must.push_back(faults[i]);

  TestSequence cur = seq;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    ++result.rounds;
    std::size_t removed_this_pass = 0;

    if (options.back_to_front) {
      for (std::size_t t = cur.length(); t-- > 0;) {
        TestSequence trial = cur;
        trial.erase(t);
        if (sim.detects_all(trial, must)) {
          cur = std::move(trial);
          ++removed_this_pass;
        }
      }
    } else {
      for (std::size_t t = 0; t < cur.length();) {
        TestSequence trial = cur;
        trial.erase(t);
        if (sim.detects_all(trial, must)) {
          cur = std::move(trial);
          ++removed_this_pass;
        } else {
          ++t;
        }
      }
    }
    if (removed_this_pass == 0) break;
  }

  result.vectors_removed = seq.length() - cur.length();
  result.sequence = std::move(cur);

  const auto final_det = sim.run(result.sequence, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (final_det[i].detected && !base[i].detected) ++result.extra_detected;
  return result;
}

template <typename Simulator, typename FaultT>
CompactionResult restoration_impl(const Netlist& nl, const TestSequence& seq,
                                  std::span<const FaultT> faults,
                                  const RestorationOptions& options) {
  Simulator sim(nl);
  CompactionResult result;
  result.original_length = seq.length();

  const auto masked = [&](const std::vector<char>& keep) {
    std::vector<std::size_t> idx;
    for (std::size_t t = 0; t < keep.size(); ++t)
      if (keep[t]) idx.push_back(t);
    return seq.select(idx);
  };

  const auto base = sim.run(seq, faults);
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < base.size(); ++i)
    if (base[i].detected) targets.push_back(i);
  std::sort(targets.begin(), targets.end(), [&](std::size_t a, std::size_t b) {
    return base[a].time > base[b].time;
  });

  std::vector<char> keep(seq.length(), 0);

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    bool all_ok = true;

    TestSequence cur = masked(keep);
    std::vector<FaultT> target_faults;
    target_faults.reserve(targets.size());
    for (std::size_t i : targets) target_faults.push_back(faults[i]);
    const auto cur_det = sim.run(cur, target_faults);

    for (std::size_t k = 0; k < targets.size(); ++k) {
      if (cur_det[k].detected) continue;
      const std::size_t fi = targets[k];
      const FaultT f = faults[fi];
      const std::size_t t_f = base[fi].time;

      const FaultT one[1] = {f};
      if (sim.detects_all(masked(keep), one)) continue;
      all_ok = false;

      std::size_t lo = t_f;
      for (;;) {
        for (std::size_t t = lo; t <= t_f; ++t) keep[t] = 1;
        if (sim.detects_all(masked(keep), one)) break;
        if (lo == 0) break;
        const std::size_t width = t_f - lo + 1;
        lo = width * 2 >= lo ? 0 : lo - width * 2;
      }
    }
    if (all_ok) break;
  }

  if (options.prune_segments) {
    std::vector<FaultT> target_faults;
    for (std::size_t i : targets) target_faults.push_back(faults[i]);
    std::vector<std::pair<std::size_t, std::size_t>> segments;
    for (std::size_t t = 0; t < keep.size();) {
      if (!keep[t]) {
        ++t;
        continue;
      }
      std::size_t end = t;
      while (end < keep.size() && keep[end]) ++end;
      segments.emplace_back(t, end);
      t = end;
    }
    std::sort(segments.begin(), segments.end(), [](const auto& a, const auto& b) {
      return (a.second - a.first) > (b.second - b.first);
    });
    for (const auto& [begin, end] : segments) {
      for (std::size_t t = begin; t < end; ++t) keep[t] = 0;
      if (!sim.detects_all(masked(keep), target_faults))
        for (std::size_t t = begin; t < end; ++t) keep[t] = 1;
    }
  }

  result.sequence = masked(keep);
  result.vectors_removed = seq.length() - result.sequence.length();

  const auto final_det = sim.run(result.sequence, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (final_det[i].detected && !base[i].detected) ++result.extra_detected;
  return result;
}

}  // namespace uniscan::detail
