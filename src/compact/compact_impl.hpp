// Shared implementation of the static compaction procedures, generic over
// the fault model: any (Simulator, Fault) pair with
//   Simulator(const Netlist&)
//   Simulator::fault_type
//   Simulator::compiled() -> const CompiledNetlist&
//   Simulator::BatchRunner (constructed from the CompiledNetlist;
//     initial_state / advance over a SequenceView)
//   run(seq_or_view, span<Fault>) -> vector<DetectionRecord>
//   detects_all(seq_or_view, span<Fault>) -> bool
// works — instantiated for stuck-at and transition faults.
//
// Omission runs on an incremental engine instead of repeated from-scratch
// resimulation; the produced CompactionResult is bit-identical to the naive
// procedure (tests/compaction_equivalence_test.cpp pins that down):
//
//  * Copy-free trials — the current selection is a keep-list over the base
//    sequence; a trial erasure is a SequenceView with one logical position
//    skipped. No O(L·PI) TestSequence copy per trial.
//  * Fail-fast fault ordering — must-detect faults are batched hardest
//    (latest-detected) first, so a batch whose every fault is detected
//    before the trial position needs no resimulation at all: erasing
//    vector t cannot disturb detections at frames < t.
//  * Checkpointed restart — while simulating, each batch snapshots its
//    resumable state every K frames (frames below the trial position only,
//    where the trial equals the accepted sequence). The next trial resumes
//    from the nearest snapshot at or below its position instead of frame 0.
//    An accepted erasure at t invalidates only the snapshots past t.
//  * Batch parallelism — the per-trial active batches fan out across
//    ThreadPool::global(); every batch writes only its own slots, so the
//    result does not depend on the thread count.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "compact/compaction.hpp"
#include "compact/omission.hpp"
#include "compact/restoration.hpp"
#include "netlist/netlist.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/fault_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/sequence_view.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace uniscan::detail {

/// Incremental trial-erasure engine for vector omission. Holds the current
/// selection as a keep-list, one BatchRunnerT<Word> per kBits-1 must-detect
/// faults, the per-batch detection times under the current selection, and
/// the checkpoint store.
template <typename Simulator, typename Word>
class OmissionEngine {
 public:
  using FaultT = typename Simulator::fault_type;
  using Runner = typename Simulator::template BatchRunnerT<Word>;
  static constexpr std::size_t kPer = WordTraits<Word>::kBits - 1;

  OmissionEngine(const CompiledNetlist& cnl, const TestSequence& base, std::vector<FaultT> must,
                 const std::vector<std::uint32_t>& must_time, std::size_t checkpoint_interval)
      : base_(&base),
        must_(std::move(must)),
        store_((must_.size() + kPer - 1) / kPer, checkpoint_interval) {
    kept_.resize(base.length());
    std::iota(kept_.begin(), kept_.end(), 0);

    const std::size_t num_batches = (must_.size() + kPer - 1) / kPer;
    runners_.reserve(num_batches);
    times_.resize(num_batches);
    max_time_.assign(num_batches, 0);
    trial_states_.resize(num_batches);
    for (std::size_t b = 0; b < num_batches; ++b) {
      const std::size_t lo = b * kPer;
      const std::size_t count = std::min<std::size_t>(kPer, must_.size() - lo);
      runners_.emplace_back(cnl, std::span<const FaultT>(must_.data() + lo, count));
      times_[b].fill(0);
      for (std::size_t i = 0; i < count; ++i) {
        times_[b][i + 1] = must_time[lo + i];
        max_time_[b] = std::max<std::size_t>(max_time_[b], must_time[lo + i]);
      }
    }
  }

  std::size_t length() const noexcept { return kept_.size(); }

  /// Trial-erase the vector at logical position `t` of the current
  /// selection; commit and return true iff every must-detect fault stays
  /// detected. Exactly the predicate detects_all(selection minus t, must).
  bool try_erase(std::size_t t) {
    const SequenceView cur(*base_, kept_);
    const SequenceView trial = cur.without(t);

    obs::count(obs::Counter::OmissionTrials);

    active_.clear();
    for (std::size_t b = 0; b < runners_.size(); ++b)
      if (max_time_[b] >= t) active_.push_back(b);
    obs::count(obs::Counter::BatchSkips, runners_.size() - active_.size());

    if (!active_.empty()) {
      ThreadPool& pool = ThreadPool::global();
      if (scratch_.size() < pool.num_workers()) scratch_.resize(pool.num_workers());
      // Wave-scheduled deterministic fail-fast (see FaultSimulator::
      // detects_all). Determinism matters doubly here: the set of executed
      // batch advances decides not just the counters but which checkpoints
      // get captured, and those feed every LATER trial's resume points.
      bool pass = true;
      for (std::size_t wave = 0; wave < active_.size() && pass; wave += kFailFastWave) {
        const std::size_t n = std::min(kFailFastWave, active_.size() - wave);
        std::atomic<bool> wave_pass{true};
        pool.parallel_for(n, [&](std::size_t k, std::size_t w) {
          const std::size_t b = active_[wave + k];
          const SimBatchStateT<Word>* cp = store_.best_at_or_before(b, t);
          if (cp) obs::count(obs::Counter::ResimRestarts);
          SimBatchStateT<Word>& s = trial_states_[b];
          s = cp ? *cp : runners_[b].initial_state();
          typename Runner::AdvanceOptions opt;
          opt.early_exit = true;
          opt.checkpoints = &store_;
          opt.batch_index = b;
          opt.capture_limit = t;  // frames <= t equal the accepted sequence
          runners_[b].advance(s, trial, scratch_[w], opt);
          if (!((s.detected_slots & runners_[b].slot_mask()) == runners_[b].slot_mask()))
            wave_pass.store(false, std::memory_order_relaxed);
        });
        pass = wave_pass.load(std::memory_order_relaxed);
      }
      if (!pass) return false;
    }

    // Commit. The trial sequence becomes the accepted sequence: snapshots
    // past t no longer match, and the simulated batches adopt their trial
    // detection times (inactive batches detect strictly before t, where
    // nothing moved).
    kept_.erase(kept_.begin() + static_cast<std::ptrdiff_t>(t));
    store_.invalidate_after(t);
    for (std::size_t b : active_) {
      const std::size_t count = runners_[b].faults().size();
      max_time_[b] = 0;
      for (std::size_t i = 0; i < count; ++i) {
        times_[b][i + 1] = trial_states_[b].detect_time[i + 1];
        max_time_[b] = std::max<std::size_t>(max_time_[b], times_[b][i + 1]);
      }
    }
    return true;
  }

  TestSequence materialize() const { return SequenceView(*base_, kept_).materialize(); }

 private:
  const TestSequence* base_;
  std::vector<FaultT> must_;
  std::vector<std::size_t> kept_;  // base indices of the current selection
  CheckpointStoreT<Word> store_;
  std::vector<Runner> runners_;
  // Per batch: first-detection frame per slot and their maximum, in current
  // selection coordinates.
  std::vector<std::array<std::uint32_t, WordTraits<Word>::kBits>> times_;
  std::vector<std::size_t> max_time_;
  std::vector<SimBatchStateT<Word>> trial_states_;  // written by at most one task each
  std::vector<std::size_t> active_;
  std::vector<std::vector<W3T<Word>>> scratch_;  // per pool worker
};

template <typename Simulator, typename FaultT, typename Word>
CompactionResult omission_run(const Netlist& nl, const TestSequence& seq,
                              std::span<const FaultT> faults, const OmissionOptions& options) {
  Simulator sim(nl);
  CompactionResult result;
  result.original_length = seq.length();
  const obs::CounterScope evals_scope;

  const auto base = sim.run(seq, faults);

  // Must-detect faults ordered hardest (latest-detected) first: a trial
  // miss surfaces in the first batch, and trailing batches — detected well
  // before most trial positions — are skipped without simulation.
  std::vector<std::size_t> must_idx;
  for (std::size_t i = 0; i < base.size(); ++i)
    if (base[i].detected) must_idx.push_back(i);
  std::stable_sort(must_idx.begin(), must_idx.end(),
                   [&](std::size_t a, std::size_t b) { return base[a].time > base[b].time; });
  std::vector<FaultT> must;
  std::vector<std::uint32_t> must_time;
  must.reserve(must_idx.size());
  must_time.reserve(must_idx.size());
  for (std::size_t i : must_idx) {
    must.push_back(faults[i]);
    must_time.push_back(base[i].time);
  }

  OmissionEngine<Simulator, Word> engine(sim.compiled(), seq, std::move(must), must_time,
                                         options.checkpoint_interval);

  // Every committed erasure has already passed full resimulation of the
  // must-detect faults, so the selection is consistent after ANY trial —
  // deadline expiry simply stops trying further omissions. Trials are cheap
  // relative to the deadline granularity, so the token is polled at stride.
  StridedPoll cancel(options.cancel);
  for (std::size_t pass = 0; pass < options.max_passes && !result.timed_out; ++pass) {
    const obs::TraceSpan pass_span("omission_pass");
    ++result.rounds;
    std::size_t removed_this_pass = 0;

    if (options.back_to_front) {
      for (std::size_t t = engine.length(); t-- > 0;) {
        if (cancel.poll()) {
          result.timed_out = true;
          break;
        }
        if (engine.try_erase(t)) ++removed_this_pass;
      }
    } else {
      for (std::size_t t = 0; t < engine.length();) {
        if (cancel.poll()) {
          result.timed_out = true;
          break;
        }
        if (engine.try_erase(t)) ++removed_this_pass;
        else ++t;
      }
    }
    if (removed_this_pass == 0) break;
  }

  result.sequence = engine.materialize();
  result.vectors_removed = seq.length() - result.sequence.length();

  const auto final_det = sim.run(result.sequence, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (final_det[i].detected && !base[i].detected) ++result.extra_detected;
  result.gate_evals = evals_scope.delta(obs::Counter::GateEvals);
  return result;
}

/// Width dispatch: like the simulators' one-shot entry points, the omission
/// engine picks the cheapest slot width for the fault population (the
/// must-detect set is a subset of `faults`, so the count is an upper bound);
/// with repacking disabled this is exactly the process-wide slot width.
template <typename Simulator, typename FaultT>
CompactionResult omission_impl(const Netlist& nl, const TestSequence& seq,
                               std::span<const FaultT> faults, const OmissionOptions& options) {
  switch (resolved_slot_width_for(faults.size())) {
    case SlotWidth::W256:
      return omission_run<Simulator, FaultT, Simd256>(nl, seq, faults, options);
    case SlotWidth::W512:
      return omission_run<Simulator, FaultT, Simd512>(nl, seq, faults, options);
    default:
      return omission_run<Simulator, FaultT, std::uint64_t>(nl, seq, faults, options);
  }
}

template <typename Simulator, typename FaultT>
CompactionResult restoration_impl(const Netlist& nl, const TestSequence& seq,
                                  std::span<const FaultT> faults,
                                  const RestorationOptions& options) {
  Simulator sim(nl);
  CompactionResult result;
  result.original_length = seq.length();
  const obs::CounterScope evals_scope;

  // The selection lives as a keep-mask; trials read it through a copy-free
  // SequenceView over `seq` instead of materializing a subsequence.
  std::vector<char> keep(seq.length(), 0);
  std::vector<std::size_t> kept;
  const auto selection = [&]() -> SequenceView {
    kept.clear();
    for (std::size_t t = 0; t < keep.size(); ++t)
      if (keep[t]) kept.push_back(t);
    return SequenceView(seq, kept);
  };

  const auto base = sim.run(seq, faults);
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < base.size(); ++i)
    if (base[i].detected) targets.push_back(i);
  std::sort(targets.begin(), targets.end(), [&](std::size_t a, std::size_t b) {
    return base[a].time > base[b].time;
  });

  bool converged = false;
  StridedPoll cancel(options.cancel);
  for (std::size_t round = 0; round < options.max_rounds && !result.timed_out; ++round) {
    const obs::TraceSpan round_span("restoration_round");
    ++result.rounds;
    bool all_ok = true;

    std::vector<FaultT> target_faults;
    target_faults.reserve(targets.size());
    for (std::size_t i : targets) target_faults.push_back(faults[i]);
    const auto cur_det = sim.run(selection(), target_faults);

    for (std::size_t k = 0; k < targets.size(); ++k) {
      if (cancel.poll()) {
        result.timed_out = true;
        break;
      }
      if (cur_det[k].detected) continue;
      const std::size_t fi = targets[k];
      const FaultT f = faults[fi];
      const std::size_t t_f = base[fi].time;

      const FaultT one[1] = {f};
      if (sim.detects_all(selection(), one)) continue;
      all_ok = false;

      std::size_t lo = t_f;
      for (;;) {
        obs::count(obs::Counter::RestorationRestores);
        if (cancel.poll()) {
          result.timed_out = true;
          break;
        }
        for (std::size_t t = lo; t <= t_f; ++t) keep[t] = 1;
        if (sim.detects_all(selection(), one)) break;
        if (lo == 0) break;
        const std::size_t width = t_f - lo + 1;
        lo = width * 2 >= lo ? 0 : lo - width * 2;
      }
    }
    if (result.timed_out) break;
    if (all_ok) {
      converged = true;
      break;
    }
  }

  // Restoration's invariant only holds at convergence: a partial selection
  // may miss faults the original sequence detected. Rather than trade away
  // coverage, a pre-convergence timeout degrades to the identity compaction.
  if (result.timed_out && !converged) std::fill(keep.begin(), keep.end(), 1);

  if (options.prune_segments && !result.timed_out) {
    std::vector<FaultT> target_faults;
    for (std::size_t i : targets) target_faults.push_back(faults[i]);
    std::vector<std::pair<std::size_t, std::size_t>> segments;
    for (std::size_t t = 0; t < keep.size();) {
      if (!keep[t]) {
        ++t;
        continue;
      }
      std::size_t end = t;
      while (end < keep.size() && keep[end]) ++end;
      segments.emplace_back(t, end);
      t = end;
    }
    std::sort(segments.begin(), segments.end(), [](const auto& a, const auto& b) {
      return (a.second - a.first) > (b.second - b.first);
    });
    for (const auto& [begin, end] : segments) {
      // Committed drops are individually verified, so stopping between
      // segments keeps the converged (coverage-complete) selection.
      if (cancel.poll()) {
        result.timed_out = true;
        break;
      }
      for (std::size_t t = begin; t < end; ++t) keep[t] = 0;
      if (!sim.detects_all(selection(), target_faults))
        for (std::size_t t = begin; t < end; ++t) keep[t] = 1;
    }
  }

  result.sequence = selection().materialize();
  result.vectors_removed = seq.length() - result.sequence.length();

  const auto final_det = sim.run(result.sequence, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (final_det[i].detected && !base[i].detected) ++result.extra_detected;
  result.gate_evals = evals_scope.delta(obs::Counter::GateEvals);
  return result;
}

}  // namespace uniscan::detail
