#include "translate/translation.hpp"

#include <stdexcept>

namespace uniscan {

TestSequence translate_test_set(const ScanCircuit& sc, const ScanTestSet& set,
                                const TranslationOptions& options) {
  const std::size_t total_cells = sc.netlist.num_dffs();
  const std::size_t shifts = sc.max_chain_length();
  if (set.chain_length != shifts)
    throw std::invalid_argument("translate_test_set: chain length mismatch");
  const std::size_t npi_scan = sc.netlist.num_inputs();
  const std::size_t npi_orig = set.num_original_inputs;
  if (npi_scan != npi_orig + 1 + sc.nets.chains.size())
    throw std::invalid_argument("translate_test_set: input count mismatch");

  TestSequence seq(npi_scan);

  // One scan operation: `shifts` vectors with scan_sel = 1. When `state` is
  // non-null each chain's scan_inp feeds its slice of the target state in
  // reverse order (the value fed at time t lands in cell shifts-1-t); a null
  // state leaves scan_inp free (pure unload).
  const auto append_scan_op = [&](const std::vector<V3>* state) {
    for (std::size_t t = 0; t < shifts; ++t) {
      std::vector<V3> vec(npi_scan, V3::X);
      vec[sc.scan_sel_index()] = V3::One;
      if (state) {
        std::size_t base = 0;
        for (const ScanChain& chain : sc.nets.chains) {
          const std::size_t len = chain.cells.size();
          const std::size_t target = shifts - 1 - t;
          if (target < len) vec[chain.scan_inp_index] = (*state)[base + target];
          base += len;
        }
      }
      seq.append(std::move(vec));
    }
  };

  for (const ScanTest& test : set.tests) {
    if (test.scan_in.size() != total_cells)
      throw std::invalid_argument("translate_test_set: scan-in width mismatch");
    append_scan_op(&test.scan_in);
    // Functional vectors with scan_sel = 0.
    for (const auto& v : test.vectors) {
      if (v.size() != npi_orig)
        throw std::invalid_argument("translate_test_set: vector width mismatch");
      std::vector<V3> vec(npi_scan, V3::X);
      for (std::size_t i = 0; i < npi_orig; ++i) vec[i] = v[i];
      vec[sc.scan_sel_index()] = V3::Zero;
      seq.append(std::move(vec));
    }
  }
  append_scan_op(nullptr);  // final scan-out

  if (options.fill == XFillPolicy::RandomFill) {
    Rng rng(options.seed);
    seq.random_fill(rng);
  } else if (options.fill == XFillPolicy::ZeroFill) {
    seq.constant_fill(V3::Zero);
  } else if (options.fill == XFillPolicy::RepeatFill) {
    seq.repeat_fill();
  }
  return seq;
}

}  // namespace uniscan
