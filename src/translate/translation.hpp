// Test set translation (paper Section 3).
//
// A conventional scan test set S = {(SI_i, T_i)} is rewritten as ONE test
// sequence for C_scan in which scan operations appear explicitly as vectors
// with scan_sel = 1:
//   for each test i:  N_SV load vectors (scan_inp feeds SI_i reversed,
//                     original inputs x), then the vectors of T_i with
//                     scan_sel = 0;
//   finally:          N_SV unload vectors (scan_sel = 1, scan_inp x).
// Each test's scan-out overlaps the next test's scan-in, exactly as in the
// paper's Table 3, so the sequence length equals the conventional test
// application time. The translated sequence detects every fault S detects;
// the point is that non-scan compaction can then shorten it freely.
#pragma once

#include "scan/scan_insertion.hpp"
#include "scan/scan_test.hpp"
#include "sim/sequence.hpp"
#include "util/rng.hpp"

namespace uniscan {

/// RepeatFill copies each free value from the previous vector's same column
/// (first vector: 0) — the classic low-transition fill that reduces shift
/// power on the tester.
enum class XFillPolicy { KeepX, RandomFill, ZeroFill, RepeatFill };

struct TranslationOptions {
  XFillPolicy fill = XFillPolicy::RandomFill;
  std::uint64_t seed = 7;
};

/// Translate `set` (defined over the original inputs of the circuit behind
/// `sc`) into a unified sequence over C_scan's inputs. Requires a single
/// scan chain whose length equals set.chain_length.
TestSequence translate_test_set(const ScanCircuit& sc, const ScanTestSet& set,
                                const TranslationOptions& options = {});

}  // namespace uniscan
